"""Bit-for-bit equivalence of the compiled movement tables.

The tables engine promises to replay the scalar reference's exact
floating-point operation sequence — not merely to agree within a
tolerance.  The fuzz below therefore compares with ``==`` on floats:
every (chain family, candidate order) pair samples degenerate corners
(all-ones tiles, full extents, quantum-off lattice points) plus seeded
interior points, and asserts the interpreted row path, the generated
(codegen) kernels, and the ``(N, L)`` batch path all reproduce
``MovementModel.volume``/``usage`` and both analytic gradients exactly.
"""

import random

import numpy as np
import pytest

from repro.core import solver
from repro.core.movement import MovementModel
from repro.core.reordering import candidate_models
from repro.core.search import SolveMemo
from repro.core.tables import (
    ENGINE_SCALAR,
    ENGINE_TABLES,
    ENV_MODEL_ENGINE,
    ENV_TABLES_CODEGEN,
    MovementTables,
    ScalarEvaluator,
    TablesEvaluator,
    _TablesMemo,
    clear_tables_memo,
    evaluator_for,
    model_engine,
    movement_tables,
    resolve_model_engine,
    tables_memo_stats,
)
from repro.ir.chains import batch_gemm_chain, conv_chain
from repro.workloads import gemm_chain_config


def _chains():
    return [
        ("gemm", batch_gemm_chain(1, 32, 24, 16, 40, name="tbl_gemm")),
        ("gemm_softmax", gemm_chain_config("G1").build(with_softmax=True)),
        ("conv", conv_chain(1, 8, 14, 14, 12, 8, 1, 1, 3, 1, name="tbl_conv")),
        (
            "conv_stride",
            conv_chain(1, 8, 16, 16, 12, 8, 2, 1, 3, 3, name="tbl_strided"),
        ),
    ]


def _sample_models(chain, count=4):
    """A spread of candidate orders: first, last, and interior picks."""
    models = candidate_models(chain).models
    if len(models) <= count:
        return list(models)
    step = max(1, len(models) // count)
    return list(models[::step][:count])


def _tile_samples(model, rng, interior=6):
    extents = model.chain.loop_extents()
    names = list(model.perm)
    samples = [
        {n: 1 for n in names},
        {n: extents[n] for n in names},
    ]
    corner_pool = lambda n: [
        1,
        extents[n],
        max(1, extents[n] // 2),
        max(1, extents[n] // 2 + 1),  # quantum-off lattice point
        min(extents[n], 3),
        min(extents[n], 7),
    ]
    for _ in range(interior):
        samples.append({n: rng.choice(corner_pool(n)) for n in names})
    for _ in range(interior):
        samples.append(
            {n: rng.uniform(1.0, float(extents[n])) for n in names}
        )
    return samples


@pytest.mark.parametrize("family,chain", _chains(), ids=lambda v: str(v))
def test_tables_match_scalar_bit_for_bit(family, chain, monkeypatch):
    monkeypatch.setenv(ENV_TABLES_CODEGEN, "1")
    rng = random.Random(f"tables-{family}")
    for model in _sample_models(chain):
        interpreted = MovementTables(model)
        generated = MovementTables(model)
        assert generated.ensure_fast_kernels()
        for tiles in _tile_samples(model, rng):
            row = interpreted.row_of(tiles)
            batch = np.array([row, row])
            for tables in (interpreted, generated):
                assert tables.volume_row(row, exact=True) == model.volume(
                    tiles, exact=True
                )
                assert tables.volume_row(row, exact=False) == model.volume(
                    tiles, exact=False
                )
                assert tables.usage_row(row) == model.usage(tiles)
            exact_batch = interpreted.volume_batch(batch, exact=True)
            smooth_batch = interpreted.volume_batch(batch, exact=False)
            usage_batch = interpreted.usage_batch(batch)
            assert float(exact_batch[0]) == model.volume(tiles, exact=True)
            assert float(smooth_batch[0]) == model.volume(tiles, exact=False)
            assert float(usage_batch[0]) == model.usage(tiles)
            slack = interpreted.slack_batch(batch, 1e6)
            assert float(slack[0]) == 1e6 - model.usage(tiles)


@pytest.mark.parametrize("family,chain", _chains(), ids=lambda v: str(v))
def test_gradient_rows_match_scalar_bit_for_bit(family, chain, monkeypatch):
    monkeypatch.setenv(ENV_TABLES_CODEGEN, "1")
    rng = random.Random(f"grads-{family}")
    for model in _sample_models(chain, count=3):
        interpreted = MovementTables(model)
        generated = MovementTables(model)
        assert generated.ensure_fast_kernels()
        index = interpreted.index
        for tiles in _tile_samples(model, rng, interior=4):
            row = interpreted.row_of(tiles)
            ref_volume, ref_vgrad = model.volume_smooth_gradient(tiles)
            ref_usage, ref_ugrad = model.usage_gradient(tiles)
            for tables in (interpreted, generated):
                volume, vgrad = tables.volume_smooth_gradient_row(row)
                usage, ugrad = tables.usage_gradient_row(row)
                assert volume == ref_volume
                assert usage == ref_usage
                for name in model.perm:
                    assert vgrad[index[name]] == ref_vgrad[name]
                    assert ugrad[index[name]] == ref_ugrad[name]


def test_volume_gradient_agrees_with_finite_differences():
    chain = batch_gemm_chain(1, 32, 24, 16, 40, name="tbl_fd")
    model = _sample_models(chain, count=1)[0]
    tables = MovementTables(model)
    tiles = {n: 5.0 for n in model.perm}
    row = tables.row_of(tiles)
    volume, grad = tables.volume_smooth_gradient_row(row)
    eps = 1e-4
    # Central differences on a ~volume-sized quantity carry cancellation
    # noise around volume * machine-eps / eps; compare against that floor.
    noise = abs(volume) * np.finfo(float).eps / eps * 8
    for name in model.perm:
        hi = dict(tiles)
        lo = dict(tiles)
        hi[name] += eps
        lo[name] -= eps
        fd = (
            model.volume(hi, exact=False) - model.volume(lo, exact=False)
        ) / (2 * eps)
        assert grad[tables.index[name]] == pytest.approx(
            fd, rel=1e-3, abs=noise
        )


def test_codegen_toggle_disables_kernels(monkeypatch):
    chain = batch_gemm_chain(1, 16, 16, 16, 16, name="tbl_toggle")
    model = _sample_models(chain, count=1)[0]
    tiles = {n: 4 for n in model.perm}

    monkeypatch.setenv(ENV_TABLES_CODEGEN, "0")
    interpreted = MovementTables(model)
    assert not interpreted.ensure_fast_kernels()

    monkeypatch.setenv(ENV_TABLES_CODEGEN, "1")
    generated = MovementTables(model)
    assert generated.ensure_fast_kernels()

    row = interpreted.row_of(tiles)
    assert interpreted.volume_row(row, exact=False) == generated.volume_row(
        row, exact=False
    )
    assert interpreted.usage_row(row) == generated.usage_row(row)


def test_tables_memo_is_a_bounded_lru():
    memo = _TablesMemo(capacity=2)
    memo.get_or_compile("a", lambda: "A")
    memo.get_or_compile("b", lambda: "B")
    assert memo.get_or_compile("a", lambda: "A2") == "A"  # hit refreshes
    memo.get_or_compile("c", lambda: "C")  # evicts "b" (least recent)
    stats = memo.stats()
    assert stats["evictions"] == 1
    assert stats["entries"] == 2
    assert memo.get_or_compile("b", lambda: "B2") == "B2"  # b was evicted
    assert memo.stats()["misses"] == 4


def test_movement_tables_memoized_per_model_and_signature():
    clear_tables_memo()
    chain = batch_gemm_chain(1, 16, 16, 16, 16, name="tbl_memo")
    model = _sample_models(chain, count=1)[0]
    twin = MovementModel(chain, model.perm)
    first = movement_tables(model)
    assert movement_tables(model) is first  # per-instance cache
    assert movement_tables(twin) is first  # signature-keyed LRU
    stats = tables_memo_stats()
    assert stats["hits"] >= 1 and stats["misses"] >= 1

    # A structurally identical but distinct chain must not share entries:
    # the memo key includes a per-chain lifetime token.
    other_chain = batch_gemm_chain(1, 16, 16, 16, 16, name="tbl_memo")
    other = MovementModel(other_chain, model.perm)
    assert movement_tables(other) is not first


def test_engine_resolution():
    assert resolve_model_engine("scalar") == ENGINE_SCALAR
    assert resolve_model_engine(" Tables ") == ENGINE_TABLES
    with pytest.raises(ValueError):
        resolve_model_engine("vectorized")


def test_engine_environment_default(monkeypatch):
    monkeypatch.setenv(ENV_MODEL_ENGINE, "scalar")
    assert model_engine() == ENGINE_SCALAR
    monkeypatch.delenv(ENV_MODEL_ENGINE)
    assert model_engine() == ENGINE_TABLES  # compiled engine by default
    monkeypatch.setenv(ENV_MODEL_ENGINE, "nope")
    with pytest.raises(ValueError):
        model_engine()


def test_evaluator_for_selects_engine():
    chain = batch_gemm_chain(1, 16, 16, 16, 16, name="tbl_eval")
    model = _sample_models(chain, count=1)[0]
    names = list(model.perm)
    assert isinstance(
        evaluator_for(model, names, engine="scalar"), ScalarEvaluator
    )
    assert isinstance(
        evaluator_for(model, names, engine="tables"), TablesEvaluator
    )


def test_solve_tiles_identical_across_engines():
    chain = conv_chain(1, 8, 14, 14, 12, 8, 1, 1, 3, 1, name="tbl_solve")
    for model in _sample_models(chain, count=2):
        capacity = 64 * 1024.0
        scalar = solver.solve_tiles(model, capacity, engine="scalar")
        tables = solver.solve_tiles(model, capacity, engine="tables")
        assert tables.tiles == scalar.tiles
        assert tables.dv == scalar.dv
        assert tables.mu == scalar.mu
        assert tables.feasible == scalar.feasible
        assert tables.continuous == scalar.continuous


def test_solve_memo_counts_evictions():
    memo = SolveMemo(capacity=1)
    memo.put("k1", "v1")
    memo.put("k2", "v2")
    stats = memo.stats()
    assert stats["entries"] == 1
    assert stats["evictions"] == 1
