"""Tests for the user-facing compilation pipeline and fusion decisions."""

import numpy as np
import pytest

import repro
from repro.codegen import build_kernel, emit_source
from repro.core.fusion import decide_fusion, plan_unfused
from repro.core.plan import FusionPlan, LevelSchedule
from repro.hardware import a100, xeon_gold_6240
from repro.ir.chains import batch_gemm_chain, conv_chain, gemm_chain
from repro.runtime import compile_chain, optimize_chain


@pytest.fixture(scope="module")
def cpu():
    return xeon_gold_6240()


class TestCompileChain:
    def test_fused_kernel_runs_and_matches_reference(self, cpu):
        chain = batch_gemm_chain(2, 32, 16, 16, 32, with_softmax=True)
        result = compile_chain(chain, cpu)
        inputs = repro.random_inputs(chain)
        outputs = result.kernels[0](inputs)
        reference = repro.execute_reference(chain, inputs)
        np.testing.assert_allclose(
            outputs["E"], reference["E"], rtol=1e-9, atol=1e-11
        )

    def test_force_unfused(self, cpu):
        chain = batch_gemm_chain(2, 32, 16, 16, 32)
        result = compile_chain(chain, cpu, force_fusion=False)
        assert not result.fused
        assert len(result.kernels) == len(chain.ops)

    def test_force_fused(self, cpu):
        chain = batch_gemm_chain(2, 32, 16, 16, 32)
        result = compile_chain(chain, cpu, force_fusion=True)
        assert result.fused
        assert len(result.kernels) == 1

    def test_micro_kernel_attached(self, cpu):
        chain = batch_gemm_chain(2, 32, 16, 16, 32)
        result = compile_chain(chain, cpu, force_fusion=True)
        kernel = result.kernels[0]
        assert kernel.plan.micro_kernel == "avx512-outer-product"
        assert 0 < kernel.plan.compute_efficiency <= 1

    def test_source_emission(self, cpu):
        chain = batch_gemm_chain(2, 32, 16, 16, 32)
        result = compile_chain(chain, cpu, force_fusion=True)
        source = result.kernels[0].source
        assert "fused kernel" in source
        assert "avx512-outer-product" in source
        assert "for (" in source

    def test_source_declares_intermediate_buffer(self, cpu):
        chain = gemm_chain(64, 64, 64, 64)
        result = compile_chain(chain, cpu, force_fusion=True)
        assert "C_buf" in result.kernels[0].source

    def test_optimize_chain_shortcut(self, cpu):
        chain = gemm_chain(128, 128, 128, 128)
        plan = optimize_chain(chain, cpu)
        assert plan.fused and plan.micro_kernel is not None

    def test_gpu_backend(self):
        chain = batch_gemm_chain(2, 64, 32, 32, 64)
        result = compile_chain(chain, a100(), force_fusion=True)
        assert result.kernels[0].plan.micro_kernel == "tensorcore-wmma-2x2"


class TestFusionDecision:
    def test_memory_bound_chain_fuses(self, cpu):
        chain = batch_gemm_chain(8, 512, 64, 64, 512)
        decision = decide_fusion(chain, cpu)
        assert decision.use_fusion
        assert decision.predicted_speedup > 1.0

    def test_unfused_plans_cover_all_ops(self, cpu):
        chain = batch_gemm_chain(2, 32, 16, 16, 32, with_softmax=True)
        plans = plan_unfused(chain, cpu)
        assert [p.chain.ops[0].name for p in plans] == [
            "gemm1", "softmax", "gemm2",
        ]

    def test_chosen_matches_flag(self, cpu):
        chain = batch_gemm_chain(2, 32, 16, 16, 32)
        decision = decide_fusion(chain, cpu)
        if decision.use_fusion:
            assert decision.chosen == (decision.fused_plan,)
        else:
            assert decision.chosen == decision.unfused_plans


class TestPlanModel:
    def test_level_accessors(self, cpu):
        chain = gemm_chain(128, 128, 128, 128)
        plan = optimize_chain(chain, cpu)
        assert plan.inner is plan.levels[0]
        assert plan.outer is plan.levels[-1]
        assert plan.level("L2").level == "L2"
        with pytest.raises(KeyError):
            plan.level("L9")

    def test_predicted_time_positive(self, cpu):
        chain = gemm_chain(128, 128, 128, 128)
        plan = optimize_chain(chain, cpu)
        assert plan.predicted_time > 0
        assert plan.movement_cost > 0
        assert plan.compute_time > 0

    def test_describe(self, cpu):
        chain = gemm_chain(128, 128, 128, 128)
        plan = optimize_chain(chain, cpu)
        text = plan.describe()
        assert "L3" in text and "predicted" in text

    def test_empty_levels_rejected(self, cpu):
        chain = gemm_chain(8, 8, 8, 8)
        with pytest.raises(ValueError):
            FusionPlan(chain=chain, hardware=cpu, levels=())

    def test_level_schedule_cost(self):
        sched = LevelSchedule(
            level="L1",
            order=("m",),
            tiles={"m": 8},
            predicted_dv=1e9,
            predicted_mu=100.0,
            capacity=200.0,
            bandwidth=1e9,
        )
        assert sched.cost == pytest.approx(1.0)
        assert "L1" in sched.describe()


class TestComputeBoundCase:
    @pytest.mark.slow
    def test_c6_style_chain_gains_little_on_gpu(self):
        """The paper's C6: a compute-bound 3x3 second conv barely gains.

        At batch 8 the kernels are large enough that launch overhead no
        longer dominates; the compute-bound chain's recomputation then
        cancels the fusion benefit, while the memory-bound chain keeps it.
        """
        hw = a100()
        compute_bound = conv_chain(8, 64, 56, 56, 64, 64, 1, 1, 1, 3)
        cb = decide_fusion(compute_bound, hw)
        # Fusion must charge the halo recomputation of the 3x3 consumer:
        # the fused plan executes strictly more flops than the algorithm.
        assert cb.fused_plan.executed_flops > compute_bound.total_flops()
        # The gain stays modest (launch overhead + the first conv's
        # traffic), nowhere near the memory-bound chains' multiples.
        assert cb.predicted_speedup < 2.0
