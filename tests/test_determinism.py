"""Reproducibility: planning and measurement must be deterministic."""

import pytest

from repro.core.movement import MovementModel
from repro.core.optimizer import ChimeraOptimizer
from repro.core.reordering import candidate_models, count_orders
from repro.core.search import SearchPolicy, search_tiles, solve_memo
from repro.hardware import a100, xeon_gold_6240
from repro.ir.chains import batch_gemm_chain, conv_chain, gemm_chain
from repro.sim import simulate_plan


class TestDeterminism:
    def test_optimizer_is_deterministic(self):
        chain = batch_gemm_chain(4, 256, 64, 64, 256)
        hw = xeon_gold_6240()
        plan_a = ChimeraOptimizer(hw).optimize(chain)
        plan_b = ChimeraOptimizer(hw).optimize(chain)
        for sched_a, sched_b in zip(plan_a.levels, plan_b.levels):
            assert sched_a.order == sched_b.order
            assert dict(sched_a.tiles) == dict(sched_b.tiles)
        assert plan_a.predicted_time == plan_b.predicted_time

    def test_simulation_is_deterministic(self):
        chain = batch_gemm_chain(2, 128, 64, 64, 128)
        hw = a100()
        plan = ChimeraOptimizer(hw).optimize(chain)
        report_a = simulate_plan(plan)
        report_b = simulate_plan(plan)
        assert report_a.boundary_traffic == report_b.boundary_traffic
        assert report_a.time == report_b.time

    @pytest.mark.slow
    def test_conv_planning_deterministic(self):
        chain = conv_chain(1, 32, 28, 28, 64, 32, 1, 1, 3, 1)
        hw = a100()
        orders = {
            ChimeraOptimizer(hw).optimize(chain).outer.order
            for _ in range(3)
        }
        assert len(orders) == 1


class TestTieBreaking:
    """DV ties between distinct orders must resolve by the canonical order
    tuple, not by enumeration position (which shifts under ``max_orders``
    stride sampling)."""

    def test_dv_tie_resolves_to_smallest_order(self):
        # A square GEMM chain is loaded with symmetry: the n<->k exchange
        # maps each order onto one with identical DV.
        chain = gemm_chain(256, 256, 256, 256)
        models = candidate_models(chain).models
        solve_memo().clear()
        model, solution = search_tiles(
            models, 256 * 1024.0, policy=SearchPolicy.exhaustive()
        )
        ties = [
            m.perm
            for m in models
            if search_tiles([m], 256 * 1024.0,
                            policy=SearchPolicy.exhaustive())[1].dv
            == solution.dv
        ]
        assert model.perm == min(ties)

    def test_representative_is_class_minimum(self):
        """Each signature class's representative must be the smallest order
        scanned, not the first encountered (scan position shifts under
        ``max_orders`` sampling)."""
        from repro.core.reordering import enumerate_orders

        chain = conv_chain(1, 64, 56, 56, 64, 64, 1, 1, 3, 3)
        cap = count_orders(chain) // 2
        groups = {}
        for order in enumerate_orders(chain, max_orders=cap):
            sig = MovementModel(chain, order).signature
            groups.setdefault(sig, []).append(order)
        space = candidate_models(chain, max_orders=cap)
        for model in space.models:
            assert model.perm == min(groups[model.signature])

    def test_winning_order_stable_under_truncation(self):
        chain = conv_chain(1, 16, 28, 28, 24, 16, 1, 1, 3, 1)
        hw = xeon_gold_6240()
        solve_memo().clear()
        cfg_full = ChimeraOptimizer(hw).optimize(chain)
        solve_memo().clear()
        from repro.core.optimizer import ChimeraConfig

        truncated = ChimeraOptimizer(
            hw, ChimeraConfig(max_orders=count_orders(chain) // 2)
        ).optimize(chain)
        # The winner's signature class survives any stride sample that still
        # covers the space, and the canonical representative pins the order.
        assert truncated.outer.order == cfg_full.outer.order
