"""Reproducibility: planning and measurement must be deterministic."""

import pytest

from repro.core.optimizer import ChimeraOptimizer
from repro.hardware import a100, xeon_gold_6240
from repro.ir.chains import batch_gemm_chain, conv_chain
from repro.sim import simulate_plan


class TestDeterminism:
    def test_optimizer_is_deterministic(self):
        chain = batch_gemm_chain(4, 256, 64, 64, 256)
        hw = xeon_gold_6240()
        plan_a = ChimeraOptimizer(hw).optimize(chain)
        plan_b = ChimeraOptimizer(hw).optimize(chain)
        for sched_a, sched_b in zip(plan_a.levels, plan_b.levels):
            assert sched_a.order == sched_b.order
            assert dict(sched_a.tiles) == dict(sched_b.tiles)
        assert plan_a.predicted_time == plan_b.predicted_time

    def test_simulation_is_deterministic(self):
        chain = batch_gemm_chain(2, 128, 64, 64, 128)
        hw = a100()
        plan = ChimeraOptimizer(hw).optimize(chain)
        report_a = simulate_plan(plan)
        report_b = simulate_plan(plan)
        assert report_a.boundary_traffic == report_b.boundary_traffic
        assert report_a.time == report_b.time

    @pytest.mark.slow
    def test_conv_planning_deterministic(self):
        chain = conv_chain(1, 32, 28, 28, 64, 32, 1, 1, 3, 1)
        hw = a100()
        orders = {
            ChimeraOptimizer(hw).optimize(chain).outer.order
            for _ in range(3)
        }
        assert len(orders) == 1
