"""Tests for the Chimera inter-block optimizer."""

import pytest

from repro.core.movement import MovementModel
from repro.core.multilevel import (
    boundary_bandwidth,
    minimax_cost,
    movement_cost,
    solve_hierarchy,
)
from repro.core.optimizer import ChimeraConfig, ChimeraOptimizer
from repro.hardware import a100, ascend_910, xeon_gold_6240
from repro.ir.chains import batch_gemm_chain, conv_chain, gemm_chain


@pytest.fixture(scope="module")
def cpu():
    return xeon_gold_6240()


@pytest.fixture(scope="module")
def square_plan(cpu):
    chain = gemm_chain(2048, 2048, 2048, 2048)
    return ChimeraOptimizer(cpu).optimize(chain)


class TestOptimizer:
    def test_picks_paper_optimal_order_family(self, square_plan):
        # The paper derives mlkn as optimal; our canonical representative
        # is any order with m/l outside and k/n inside.
        outer = square_plan.outer.order
        assert set(outer[:2]) == {"m", "l"}

    def test_every_level_feasible(self, square_plan, cpu):
        for sched in square_plan.levels:
            assert sched.predicted_mu <= sched.capacity * 1.0001

    def test_inner_tiles_nest_in_outer(self, square_plan):
        inner, outer = square_plan.inner, square_plan.outer
        for name, tile in inner.tiles.items():
            assert tile <= outer.tiles.get(name, tile)

    def test_levels_match_hardware(self, square_plan, cpu):
        assert [s.level for s in square_plan.levels] == [
            level.name for level in cpu.on_chip_levels
        ]

    def test_stats_populated(self, cpu):
        chain = gemm_chain(256, 256, 256, 256)
        optimizer = ChimeraOptimizer(cpu)
        optimizer.optimize(chain)
        stats = optimizer.last_stats
        assert stats is not None
        assert stats.orders_scanned > 0
        assert stats.solves > 0
        assert stats.elapsed_seconds > 0

    def test_producer_reduction_whole_at_outer_levels(self, cpu):
        chain = batch_gemm_chain(8, 512, 64, 64, 512)
        plan = ChimeraOptimizer(cpu).optimize(chain)
        extents = chain.loop_extents()
        for sched in plan.levels[1:]:  # all but innermost
            assert sched.tiles["k"] == extents["k"]

    def test_prefix_consistency_across_levels(self, cpu):
        chain = batch_gemm_chain(8, 512, 64, 64, 512)
        plan = ChimeraOptimizer(cpu).optimize(chain)
        extents = chain.loop_extents()
        for outer_sched, inner_sched in zip(
            reversed(plan.levels), list(reversed(plan.levels))[1:]
        ):
            split = {
                name
                for name, tile in outer_sched.tiles.items()
                if tile < extents[name] and name in outer_sched.order
            }
            assert set(inner_sched.order[: len(split)]) == split

    def test_no_enlarged_buffers_on_lru_hardware(self, cpu):
        # The outermost level keeps intermediates on chip, so its order
        # must not require an enlarged distribution buffer (inner levels
        # charge intermediates as IO instead, so any order is fair there).
        chain = batch_gemm_chain(8, 512, 64, 64, 512)
        plan = ChimeraOptimizer(cpu).optimize(chain)
        model = MovementModel(chain, plan.outer.order)
        assert not model.has_enlarged_buffers

    def test_plan_for_order(self, cpu):
        chain = gemm_chain(256, 256, 256, 256)
        plan = ChimeraOptimizer(cpu).plan_for_order(
            chain, ("m", "l", "k", "n")
        )
        assert plan.outer.order == ("m", "l", "k", "n")

    def test_min_tiles_respected(self, cpu):
        chain = gemm_chain(256, 256, 256, 256)
        config = ChimeraConfig(min_tiles={"n": 64})
        plan = ChimeraOptimizer(cpu, config).optimize(chain)
        assert plan.outer.tiles["n"] >= 64

    def test_gpu_and_npu_backends(self):
        chain = batch_gemm_chain(4, 256, 64, 64, 256)
        for hw in (a100(), ascend_910()):
            plan = ChimeraOptimizer(hw).optimize(chain)
            assert len(plan.levels) == len(hw.on_chip_levels)
            assert plan.predicted_time > 0

    def test_npu_unified_buffer_constraint(self):
        hw = ascend_910()
        chain = batch_gemm_chain(1, 1024, 64, 64, 1024)
        optimizer = ChimeraOptimizer(hw)
        constraints = optimizer.extra_constraints(chain)
        assert len(constraints) == 1
        plan = optimizer.optimize(chain)
        # The intermediate tile must fit the Unified Buffer.
        for fn in constraints:
            assert fn(dict(plan.inner.tiles)) <= 0

    def test_conv_chain_plannable(self, cpu):
        chain = conv_chain(1, 64, 56, 56, 128, 64, 1, 1, 3, 1)
        plan = ChimeraOptimizer(cpu).optimize(chain)
        assert plan.fused
        assert plan.executed_flops >= chain.total_flops() * 0.99


class TestMultilevel:
    def test_boundary_bandwidth_uses_outer_level(self, cpu):
        # The L3 boundary is fed at DRAM speed.
        index = cpu.level_index("L3")
        assert boundary_bandwidth(cpu, index) == cpu.dram_bandwidth

    def test_movement_cost(self, cpu):
        index = cpu.level_index("L3")
        assert movement_cost(131e9, cpu, index) == pytest.approx(1.0)

    def test_solve_hierarchy_orders_innermost_first(self, cpu):
        chain = gemm_chain(512, 512, 512, 512)
        model = MovementModel(chain, ("m", "l", "k", "n"))
        schedules = solve_hierarchy(model, cpu)
        assert [s.level for s in schedules] == ["L1", "L2", "L3"]
        assert minimax_cost(schedules) == max(s.cost for s in schedules)
