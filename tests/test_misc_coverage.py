"""Coverage for small utilities not exercised elsewhere."""

import pytest

from repro.hardware import xeon_gold_6240
from repro.ir.access import AffineExpr
from repro.ir.chains import gemm_chain
from repro.ir.dtypes import FP16
from repro.ir.loops import Loop
from repro.sim.cache import RegionCache


class TestCacheExtras:
    def test_invalidate_clean_keeps_dirty(self):
        cache = RegionCache("L1", 1024)
        cache.access("clean", 100)
        cache.access("dirty", 100, write=True)
        cache.invalidate_clean()
        assert "dirty" in cache and "clean" not in cache
        assert cache.used_bytes == 100

    def test_write_upgrade_marks_dirty(self):
        spills = []
        cache = RegionCache(
            "L1", 150, on_evict=lambda k, n, d: spills.append((k, d))
        )
        cache.access("a", 100)              # clean
        cache.access("a", 100, write=True)  # upgraded to dirty
        cache.access("b", 100)              # evicts a
        assert spills == [("a", True)]


class TestHardwareExtras:
    def test_memory_time(self):
        hw = xeon_gold_6240()
        seconds = hw.memory_time(131e9, "DRAM")
        assert seconds == pytest.approx(1.0)

    def test_vector_unit_lanes(self):
        hw = xeon_gold_6240()
        assert hw.vector_unit.lanes(FP16) == 32


class TestIrExtras:
    def test_affine_str_with_offset(self):
        expr = AffineExpr.of(("m", 2), offset=3)
        assert str(expr) == "2*m + 3"
        assert str(AffineExpr.of()) == "0"

    def test_loop_str(self):
        from repro.ir.loops import LoopKind

        assert str(Loop("k", 8, LoopKind.REDUCTION)) == "k[8]r"
        assert str(Loop("m", 8)) == "m[8]s"

    def test_tensor_str(self):
        chain = gemm_chain(8, 8, 8, 8)
        assert "A<8x8, fp16>" in str(chain.tensors["A"])

    def test_chain_str(self):
        chain = gemm_chain(8, 8, 8, 8)
        assert "2 ops" in str(chain)

    def test_operator_str_shows_accesses(self):
        chain = gemm_chain(8, 8, 8, 8)
        text = str(chain.op("gemm1"))
        assert "C[m, l]" in text and "A[m, k]" in text


class TestPlanExtras:
    def test_with_micro_kernel_returns_new_plan(self):
        from repro.core.optimizer import ChimeraOptimizer

        chain = gemm_chain(64, 64, 64, 64)
        plan = ChimeraOptimizer(xeon_gold_6240()).optimize(chain)
        tagged = plan.with_micro_kernel("x", 0.5)
        assert tagged is not plan
        assert tagged.micro_kernel == "x"
        assert plan.micro_kernel is None
