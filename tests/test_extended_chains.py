"""Tests for the extension chains: QK^T layout and conv towers.

The paper's Section IV-B notes the analysis generalizes beyond two
compute-intensive operators; these tests exercise exactly that.
"""

import numpy as np
import pytest

import repro
from repro.codegen import (
    execute_program,
    execute_reference,
    lower_schedule,
    random_inputs,
)
from repro.core.movement import MovementModel, algorithm1
from repro.core.optimizer import ChimeraOptimizer
from repro.hardware import a100, xeon_gold_6240
from repro.ir.chains import batch_gemm_chain, conv_tower


def _order(chain):
    extents = chain.loop_extents()
    return tuple(n for n in chain.independent_loops() if extents[n] > 1)


class TestQktLayout:
    def test_transposed_operand_shape(self):
        chain = batch_gemm_chain(2, 32, 16, 16, 32, qkt_layout=True)
        assert chain.tensors["B"].shape == (2, 32, 16)  # [b, L, K]

    def test_numerics(self):
        chain = batch_gemm_chain(
            2, 32, 16, 16, 32, with_softmax=True, qkt_layout=True
        )
        program = lower_schedule(
            chain, ("b", "m", "l", "k", "n"),
            {"b": 1, "m": 8, "l": 8, "k": 8, "n": 8},
        )
        inputs = random_inputs(chain, 0)
        got = execute_program(program, inputs)
        ref = execute_reference(chain, inputs)
        np.testing.assert_allclose(got["E"], ref["E"], rtol=1e-9, atol=1e-11)

    def test_movement_model_sees_transposed_access(self):
        # Under mlkn, B[b, l, k] flips at k just like B[b, k, l] — the DV
        # total is layout-independent, only the footprint axes swap.
        plain = batch_gemm_chain(2, 64, 32, 32, 64)
        qkt = batch_gemm_chain(2, 64, 32, 32, 64, qkt_layout=True)
        tiles = {"b": 2, "m": 16, "l": 16, "k": 8, "n": 8}
        order = ("b", "m", "l", "k", "n")
        dv_plain, _ = algorithm1(plain, order, tiles)
        dv_qkt, _ = algorithm1(qkt, order, tiles)
        assert dv_plain == pytest.approx(dv_qkt)

    @pytest.mark.slow
    def test_pipeline_on_gpu(self):
        chain = batch_gemm_chain(
            4, 128, 64, 64, 128, with_softmax=True, qkt_layout=True
        )
        result = repro.compile_chain(chain, a100(), force_fusion=True)
        inputs = random_inputs(chain, 1)
        outputs = result.kernels[0](inputs)
        ref = execute_reference(chain, inputs)
        np.testing.assert_allclose(outputs["E"], ref["E"], rtol=1e-9)


class TestConvTower:
    def test_structure_three_stages(self):
        chain = conv_tower(1, 4, 16, 16, [6, 8, 5], [3, 1, 3])
        assert [op.name for op in chain.ops] == ["conv0", "conv1", "conv2"]
        assert chain.intermediate_tensors() == ("T0", "T1")
        assert chain.io_tensors() == ("X", "W0", "W1", "W2", "T2")

    def test_halo_composes_through_stages(self):
        chain = conv_tower(1, 4, 16, 16, [6, 8, 5], [3, 1, 3])
        x_access = chain.op("conv0").access_of("X")
        h_dim = x_access.dims[2]
        # All three kernel offsets appear in the first conv's input index.
        assert h_dim.coeff("rh0") == 1
        assert h_dim.coeff("rh2") == 1

    def test_private_reductions_per_stage(self):
        chain = conv_tower(1, 4, 16, 16, [6, 8, 5], [3, 1, 3])
        conv0_private = set(chain.private_loops(chain.op("conv0")))
        assert {"ic0", "rh0", "rw0"} == conv0_private

    def test_numerics_with_strides(self):
        chain = conv_tower(2, 4, 12, 12, [6, 5], [3, 3], [2, 1])
        order = _order(chain)
        program = lower_schedule(chain, order, {n: 3 for n in order})
        inputs = random_inputs(chain, 5)
        got = execute_program(program, inputs)
        ref = execute_reference(chain, inputs)
        out = chain.output_tensors()[0]
        np.testing.assert_allclose(got[out], ref[out], rtol=1e-9, atol=1e-11)

    def test_validation(self):
        with pytest.raises(ValueError, match="equal length"):
            conv_tower(1, 4, 16, 16, [6, 8], [3])
        with pytest.raises(ValueError, match="at least two"):
            conv_tower(1, 4, 16, 16, [6], [3])
        with pytest.raises(ValueError, match="strides"):
            conv_tower(1, 4, 16, 16, [6, 8], [3, 3], [1])

    @pytest.mark.slow
    def test_optimizer_handles_three_op_chain(self):
        chain = conv_tower(1, 16, 28, 28, [32, 32, 16], [1, 3, 1])
        plan = ChimeraOptimizer(xeon_gold_6240()).optimize(chain)
        assert plan.fused
        assert plan.executed_flops >= chain.total_flops() * 0.99
        # Algorithm 1 must still find a feasible multi-level schedule.
        for sched in plan.levels:
            assert sched.predicted_mu <= sched.capacity * 1.0001

    @pytest.mark.slow
    def test_three_op_movement_model_consistency(self):
        chain = conv_tower(1, 8, 16, 16, [8, 8, 8], [1, 3, 1])
        order = _order(chain)
        tiles = {n: 4 for n in chain.loop_extents()}
        dv_ref, mu_ref = algorithm1(chain, order, tiles)
        model = MovementModel(chain, order)
        assert model.volume(tiles) == pytest.approx(dv_ref)
