"""Tests for end-of-kernel flush semantics (dead intermediates)."""

import pytest

from repro.codegen.program import lower_schedule
from repro.core.optimizer import ChimeraOptimizer
from repro.hardware import xeon_gold_6240
from repro.hardware.spec import HardwareSpec, MemoryLevel
from repro.ir.chains import batch_gemm_chain
from repro.sim import (
    MemoryHierarchySim,
    RegionCache,
    SimConfig,
    simulate_plan,
    simulate_sequence,
)
from repro.sim.trace import trace_program


class TestCacheDiscard:
    def test_discarded_dirty_entries_do_not_write_back(self):
        cache = RegionCache("L1", 1024)
        cache.access(("C", (0, 8)), 100, write=True)
        cache.access(("E", (0, 8)), 100, write=True)
        cache.flush(lambda key: key[0] == "C")
        assert cache.stats.writeback_bytes == 100  # only E

    def test_no_discard_by_default(self):
        cache = RegionCache("L1", 1024)
        cache.access("x", 100, write=True)
        cache.flush()
        assert cache.stats.writeback_bytes == 100


class TestHierarchyDiscard:
    def _hw(self):
        return HardwareSpec(
            name="t", backend="cpu", peak_flops=1e12, num_cores=1,
            levels=(
                MemoryLevel("L1", 4096, 1e9),
                MemoryLevel("DRAM", None, 1e9),
            ),
        )

    def test_discard_tensor_names(self):
        sim = MemoryHierarchySim(self._hw())
        sim.write(("C", (0, 4)), 100)
        sim.write(("E", (0, 4)), 100)
        sim.flush(frozenset({"C"}))
        assert sim.caches[0].stats.writeback_bytes == 100


class TestFusedIntermediateIsDead:
    def test_fused_dram_traffic_excludes_intermediate(self):
        """With full shared capacity the fused kernel's DRAM traffic is
        exactly the compulsory IO bytes — the intermediate never leaves
        the chip (the paper's core claim)."""
        hw = xeon_gold_6240()
        chain = batch_gemm_chain(8, 512, 64, 64, 512)
        plan = ChimeraOptimizer(hw).optimize(chain)
        report = simulate_plan(
            plan, config=SimConfig(shared_capacity_per_core=False)
        )
        assert report.dram_traffic == pytest.approx(
            chain.io_bytes(), rel=0.05
        )

    def test_unfused_sequence_pays_for_intermediate(self):
        hw = xeon_gold_6240()
        chain = batch_gemm_chain(8, 512, 64, 64, 512)
        from repro.core.fusion import plan_unfused

        plans = plan_unfused(chain, hw)
        report = simulate_sequence(
            plans, name="unfused",
            config=SimConfig(shared_capacity_per_core=False),
        )
        # C (4MB) is a real tensor between the two kernels: it must at
        # least write back once even with a huge warm L3.
        c_bytes = chain.tensors["C"].nbytes
        assert report.dram_traffic >= chain.io_bytes() + c_bytes * 0.9
