"""Cross-module integration tests: the full pipeline on every backend."""

import numpy as np
import pytest

import repro
from repro.codegen import execute_reference, random_inputs
from repro.hardware import all_presets
from repro.ir.chains import batch_gemm_chain, conv_chain, mlp_chain
from repro.ir.dtypes import FP32


@pytest.mark.slow
class TestFullPipeline:
    @pytest.mark.parametrize("hw", all_presets(), ids=lambda h: h.name)
    def test_compile_execute_simulate_bmm(self, hw):
        chain = batch_gemm_chain(2, 64, 32, 32, 64, with_softmax=True)
        result = repro.compile_chain(chain, hw, force_fusion=True)
        kernel = result.kernels[0]
        inputs = random_inputs(chain, 7)
        outputs = kernel(inputs)
        reference = execute_reference(chain, inputs)
        np.testing.assert_allclose(
            outputs["E"], reference["E"], rtol=1e-9, atol=1e-11
        )
        report = repro.simulate_plan(kernel.plan)
        assert report.time > 0
        assert report.dram_traffic >= chain.io_bytes() * 0.5

    @pytest.mark.parametrize("hw", all_presets(), ids=lambda h: h.name)
    def test_compile_execute_conv(self, hw):
        chain = conv_chain(1, 8, 16, 16, 12, 10, 2, 1, 3, 1)
        result = repro.compile_chain(chain, hw, force_fusion=True)
        kernel = result.kernels[0]
        inputs = random_inputs(chain, 3)
        outputs = kernel(inputs)
        reference = execute_reference(chain, inputs)
        np.testing.assert_allclose(
            outputs["Y2"], reference["Y2"], rtol=1e-9, atol=1e-11
        )

    def test_fp32_chain(self):
        chain = batch_gemm_chain(1, 32, 16, 16, 32, dtype=FP32)
        hw = repro.xeon_gold_6240()
        result = repro.compile_chain(chain, hw, force_fusion=True)
        inputs = random_inputs(chain, 1)
        outputs = result.kernels[0](inputs)
        reference = execute_reference(chain, inputs)
        np.testing.assert_allclose(outputs["E"], reference["E"], rtol=1e-9)
        # fp32 doubles every footprint: DV in bytes doubles too.
        fp16_chain = batch_gemm_chain(1, 32, 16, 16, 32)
        assert chain.io_bytes() == 2 * fp16_chain.io_bytes()

    def test_unfused_compile_runs_sequentially(self):
        chain = batch_gemm_chain(1, 32, 16, 16, 32, with_softmax=True)
        hw = repro.xeon_gold_6240()
        result = repro.compile_chain(chain, hw, force_fusion=False)
        assert len(result.kernels) == 3
        # Chain the kernels by hand: feed each kernel what it needs.
        arrays = dict(random_inputs(chain, 2))
        for kernel in result.kernels:
            needed = {
                name: arrays[name]
                for name in kernel.chain.input_tensors()
            }
            arrays.update(kernel(needed))
        reference = execute_reference(chain, random_inputs(chain, 2))
        np.testing.assert_allclose(
            arrays["E"], reference["E"], rtol=1e-9, atol=1e-11
        )

    def test_mlp_chain_through_pipeline(self):
        chain = mlp_chain(64, 32, 128, 32)
        hw = repro.a100()
        result = repro.compile_chain(chain, hw, force_fusion=True)
        inputs = random_inputs(chain, 5)
        outputs = result.kernels[0](inputs)
        reference = execute_reference(chain, inputs)
        np.testing.assert_allclose(
            outputs["Y"], reference["Y"], rtol=1e-9, atol=1e-11
        )


@pytest.mark.slow
class TestReproductionShapes:
    """The headline claims, asserted end to end on the simulator."""

    def test_memory_bound_bmm_fuses_and_wins_everywhere(self):
        from repro.baselines import get_system

        chain = batch_gemm_chain(8, 512, 64, 64, 512)
        for hw in all_presets():
            keys = {
                "cpu": ("relay", "chimera"),
                "gpu": ("relay", "chimera"),
                "npu": ("tbe", "chimera"),
            }[hw.backend]
            baseline = get_system(keys[0]).run(chain, hw)
            chimera = get_system(keys[1]).run(chain, hw)
            assert chimera.time < baseline.time, hw.name

    def test_chimera_reduces_dram_traffic_vs_unfused(self):
        chain = batch_gemm_chain(8, 512, 64, 64, 512)
        hw = repro.xeon_gold_6240()
        decision = repro.decide_fusion(chain, hw)
        fused = repro.simulate_plan(decision.fused_plan)
        unfused = repro.simulate_sequence(
            decision.unfused_plans, name="unfused"
        )
        assert fused.dram_traffic < unfused.dram_traffic

    def test_softmax_fusion_single_launch(self):
        chain = batch_gemm_chain(4, 256, 64, 64, 256, with_softmax=True)
        hw = repro.a100()
        decision = repro.decide_fusion(chain, hw)
        assert decision.use_fusion
        report = repro.simulate_plan(decision.fused_plan)
        assert report.launches == 1
