"""Tests for source emission and the FusedKernel artifact."""

import numpy as np
import pytest

from repro.codegen import build_kernel, emit_source, lower_schedule
from repro.codegen.program import lower_plan
from repro.core.optimizer import ChimeraOptimizer
from repro.hardware import a100, ascend_910, xeon_gold_6240
from repro.ir.chains import batch_gemm_chain, conv_chain, gemm_chain
from repro.microkernel import lower_for_chain
from repro.runtime import compile_chain


@pytest.fixture(scope="module")
def cpu():
    return xeon_gold_6240()


@pytest.fixture(scope="module")
def plan(cpu):
    chain = batch_gemm_chain(2, 64, 32, 32, 64)
    return ChimeraOptimizer(cpu).optimize(chain)


class TestSourceEmission:
    def test_header_metadata(self, plan):
        program = lower_plan(plan)
        source = emit_source(plan, program)
        assert f"// target: {plan.hardware.name}" in source
        assert "// block order:" in source
        assert "// tiles:" in source

    def test_intermediate_buffer_declared(self, plan):
        program = lower_plan(plan)
        source = emit_source(plan, program)
        assert "C_buf[" in source
        assert "onchip_t" in source

    def test_micro_kernel_call_sites(self, plan, cpu):
        kernel = lower_for_chain(cpu, plan.chain)
        program = lower_plan(plan)
        source = emit_source(plan, program, kernel)
        assert "avx512-outer-product<batch_gemm>" in source

    def test_function_signature_lists_io_tensors(self, plan):
        program = lower_plan(plan)
        source = emit_source(plan, program)
        for tensor in plan.chain.io_tensors():
            assert f"tensor_t {tensor}" in source

    def test_loop_nest_emitted(self, plan):
        program = lower_plan(plan)
        source = emit_source(plan, program)
        assert source.count("for (") >= len(plan.outer.order)

    def test_identifier_sanitization(self, cpu):
        chain = gemm_chain(32, 32, 32, 32, name="weird-name+1")
        plan = ChimeraOptimizer(cpu).optimize(chain)
        source = emit_source(plan, lower_plan(plan))
        assert "void weird_name_1(" in source


class TestFusedKernel:
    def test_build_and_call(self, plan):
        kernel = build_kernel(plan)
        inputs = {
            name: np.random.default_rng(0).standard_normal(
                plan.chain.tensors[name].shape
            )
            for name in plan.chain.input_tensors()
        }
        outputs = kernel(inputs)
        assert set(outputs) == set(plan.chain.output_tensors())

    def test_predicted_time_passthrough(self, plan):
        kernel = build_kernel(plan)
        assert kernel.predicted_time == plan.predicted_time
        assert kernel.chain is plan.chain

    def test_source_property(self, plan):
        kernel = build_kernel(plan)
        assert "fused kernel" in kernel.source

    def test_backend_specific_kernel_names(self):
        chain = batch_gemm_chain(2, 64, 32, 32, 64)
        for hw, expected in (
            (a100(), "tensorcore-wmma-2x2"),
            (ascend_910(), "cube-mad"),
        ):
            result = compile_chain(chain, hw, force_fusion=True)
            assert result.kernels[0].plan.micro_kernel == expected
