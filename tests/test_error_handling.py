"""Error paths: the library must fail loudly and helpfully."""

import pytest

from repro.baselines import get_system
from repro.core.movement import MovementModel
from repro.hardware import xeon_gold_6240
from repro.ir import builders
from repro.ir.chains import fuse_sequence, gemm_chain
from repro.runtime.serialization import plan_from_dict


class TestHelpfulErrors:
    def test_unknown_system_lists_candidates(self):
        with pytest.raises(KeyError) as err:
            get_system("tvm")
        assert "chimera" in str(err.value)

    def test_unknown_preset_lists_candidates(self):
        from repro.hardware import preset

        with pytest.raises(KeyError) as err:
            preset("h100")
        assert "a100" in str(err.value)

    def test_bad_permutation_names_the_loops(self):
        chain = gemm_chain(8, 8, 8, 8)
        with pytest.raises(ValueError) as err:
            MovementModel(chain, ("m", "l", "k", "q"))
        assert "q" in str(err.value)

    def test_chain_access_to_missing_tensor(self):
        chain = gemm_chain(8, 8, 8, 8)
        with pytest.raises(KeyError):
            chain.op("gemm1").access_of("Z")
        with pytest.raises(KeyError):
            chain.op("nope")

    def test_fuse_non_plain_output_rejected(self):
        # A producer whose output index is already an affine halo
        # expression (it was fused under a 3x3 consumer) cannot be fused
        # again through the plain-loop mapping.
        from repro.ir.chains import conv_chain

        fused = conv_chain(1, 4, 8, 8, 4, 4, 1, 1, 1, 3)
        conv1 = fused.op("conv1")  # output dims are (oh + rh2, ...)
        downstream = builders.relu(
            "r2", (1, 4, 8, 8), src="Y1", out="R2"
        )
        with pytest.raises(ValueError, match="plain loop"):
            fuse_sequence(
                "bad", [(conv1, dict(fused.tensors)), downstream]
            )

    def test_plan_format_error_message(self):
        with pytest.raises(ValueError, match="format version"):
            plan_from_dict({"format_version": None})

    def test_comparison_requires_known_reference(self):
        from repro.runtime import compare

        chain = gemm_chain(32, 32, 32, 32)
        comp = compare([chain], xeon_gold_6240(), ("relay", "chimera"))
        with pytest.raises(KeyError):
            comp.rows[0].normalized("PyTorch")
