"""Tests for depthwise convolutions and separable chains."""

import numpy as np
import pytest

import repro
from repro.codegen import (
    execute_program,
    execute_reference,
    lower_schedule,
    random_inputs,
)
from repro.core.fusion import decide_fusion
from repro.core.movement import MovementModel, algorithm1
from repro.hardware import a100, xeon_gold_6240
from repro.ir import builders
from repro.ir.chain import single_op_chain
from repro.ir.chains import separable_chain


def _order(chain):
    extents = chain.loop_extents()
    return tuple(n for n in chain.independent_loops() if extents[n] > 1)


class TestDepthwiseBuilder:
    def test_channel_is_spatial(self):
        op, tensors = builders.depthwise_conv2d("dw", 1, 8, 16, 16, 3)
        assert "dw.c" in op.spatial_loop_names
        assert op.reduction_loop_names == ("dw.rh", "dw.rw")
        assert tensors["dw.W"].shape == (8, 3, 3)

    def test_flops(self):
        op, _ = builders.depthwise_conv2d("dw", 2, 8, 16, 16, 3, 2)
        assert op.flops == 2 * 2 * 8 * 8 * 8 * 9

    def test_standalone_numerics(self):
        op, tensors = builders.depthwise_conv2d("dw", 1, 4, 10, 10, 3)
        chain = single_op_chain(op, tensors)
        order = _order(chain)
        program = lower_schedule(chain, order, {n: 3 for n in order})
        inputs = random_inputs(chain, 2)
        got = execute_program(program, inputs)
        ref = execute_reference(chain, inputs)
        np.testing.assert_allclose(
            got["dw.Y"], ref["dw.Y"], rtol=1e-9, atol=1e-11
        )


class TestSeparableChain:
    def test_structure(self):
        chain = separable_chain(1, 16, 28, 28, 32)
        assert [op.tag for op in chain.ops] == ["depthwise_conv2d", "conv2d"]
        assert chain.intermediate_tensors() == ("T",)
        # The depthwise channel becomes the pointwise reduction.
        assert "c" in chain.op("pw").reduction_loop_names

    def test_depthwise_taps_private(self):
        chain = separable_chain(1, 16, 28, 28, 32)
        assert set(chain.private_loops(chain.op("dw"))) == {"rh", "rw"}

    def test_channel_shared(self):
        chain = separable_chain(1, 16, 28, 28, 32)
        owners = {op.name for op in chain.ops_with_loop("c")}
        assert owners == {"dw", "pw"}

    def test_numerics_random_orders(self):
        import random

        chain = separable_chain(1, 6, 12, 12, 8, 3, 1)
        rng = random.Random(11)
        base_order = list(_order(chain))
        for trial in range(4):
            order = list(base_order)
            rng.shuffle(order)
            program = lower_schedule(
                chain, tuple(order), {n: 3 for n in chain.loop_extents()}
            )
            inputs = random_inputs(chain, trial)
            got = execute_program(program, inputs)
            ref = execute_reference(chain, inputs)
            np.testing.assert_allclose(
                got["Y"], ref["Y"], rtol=1e-9, atol=1e-11
            )

    def test_movement_model_consistency(self):
        chain = separable_chain(1, 8, 16, 16, 12)
        order = _order(chain)
        tiles = {n: 4 for n in chain.loop_extents()}
        dv_ref, _ = algorithm1(chain, order, tiles)
        model = MovementModel(chain, order)
        assert model.volume(tiles) == pytest.approx(dv_ref)

    @pytest.mark.slow
    def test_planner_fuses_memory_bound_separable_block(self):
        # Depthwise stages are extremely memory-bound (9 flops/point); the
        # separable block is a prime fusion target.
        chain = separable_chain(8, 64, 56, 56, 128)
        decision = decide_fusion(chain, a100())
        assert decision.predicted_speedup > 1.0

    @pytest.mark.slow
    def test_pipeline_end_to_end(self):
        chain = separable_chain(1, 8, 16, 16, 12, with_relu=True)
        result = repro.compile_chain(
            chain, xeon_gold_6240(), force_fusion=True
        )
        inputs = random_inputs(chain, 9)
        outputs = result.kernels[0](inputs)
        ref = execute_reference(chain, inputs)
        np.testing.assert_allclose(
            outputs["Y"], ref["Y"], rtol=1e-9, atol=1e-11
        )
