"""Property-based tests (hypothesis) for core invariants."""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.codegen.executor import (
    execute_program,
    execute_reference,
    random_inputs,
)
from repro.codegen.program import lower_schedule
from repro.core.movement import MovementModel, algorithm1
from repro.core.solver import solve_tiles
from repro.ir.access import AffineExpr
from repro.ir.chains import batch_gemm_chain, conv_chain, gemm_chain
from repro.sim.cache import RegionCache

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# affine expressions
# ----------------------------------------------------------------------
@given(
    coeffs=st.lists(st.integers(1, 4), min_size=1, max_size=3),
    tiles=st.lists(st.integers(1, 64), min_size=3, max_size=3),
)
@SETTINGS
def test_footprint_at_least_one(coeffs, tiles):
    terms = [(f"l{i}", c) for i, c in enumerate(coeffs)]
    expr = AffineExpr.of(*terms)
    mapping = {f"l{i}": t for i, t in enumerate(tiles)}
    assert expr.footprint(mapping) >= 1


@given(
    coeff=st.integers(1, 4),
    tile_a=st.integers(1, 64),
    tile_b=st.integers(1, 64),
)
@SETTINGS
def test_footprint_monotone_in_tiles(coeff, tile_a, tile_b):
    expr = AffineExpr.of(("x", coeff))
    lo, hi = sorted((tile_a, tile_b))
    assert expr.footprint({"x": lo}) <= expr.footprint({"x": hi})


# ----------------------------------------------------------------------
# Algorithm 1
# ----------------------------------------------------------------------
_tile_choice = st.sampled_from([1, 2, 4, 8, 16, 32, 64])


@given(
    perm=st.permutations(["m", "n", "k", "l"]),
    tm=_tile_choice, tn=_tile_choice, tk=_tile_choice, tl=_tile_choice,
)
@SETTINGS
def test_algorithm1_matches_movement_model(perm, tm, tn, tk, tl):
    chain = gemm_chain(64, 64, 64, 64)
    tiles = {"m": tm, "n": tn, "k": tk, "l": tl}
    dv_ref, _ = algorithm1(chain, perm, tiles)
    model = MovementModel(chain, perm)
    assert model.volume(tiles) == pytest.approx(dv_ref)


@given(
    perm=st.permutations(["m", "n", "k", "l"]),
    tiles=st.tuples(_tile_choice, _tile_choice, _tile_choice, _tile_choice),
    loop=st.sampled_from(["m", "n", "k", "l"]),
)
@SETTINGS
def test_dv_monotone_nonincreasing_in_tiles(perm, tiles, loop):
    chain = gemm_chain(64, 64, 64, 64)
    base = dict(zip(("m", "n", "k", "l"), tiles))
    grown = dict(base)
    grown[loop] = min(64, base[loop] * 2)
    model = MovementModel(chain, perm)
    assert model.volume(grown) <= model.volume(base) * (1 + 1e-9)


@given(
    perm=st.permutations(["m", "n", "k", "l"]),
    tiles=st.tuples(_tile_choice, _tile_choice, _tile_choice, _tile_choice),
    loop=st.sampled_from(["m", "n", "k", "l"]),
)
@SETTINGS
def test_mu_monotone_nondecreasing_in_tiles(perm, tiles, loop):
    chain = gemm_chain(64, 64, 64, 64)
    base = dict(zip(("m", "n", "k", "l"), tiles))
    grown = dict(base)
    grown[loop] = min(64, base[loop] * 2)
    model = MovementModel(chain, perm)
    assert model.usage(grown) >= model.usage(base) - 1e-9


@given(perm=st.permutations(["m", "n", "k", "l"]))
@SETTINGS
def test_dv_never_below_compulsory(perm):
    # Every IO tensor must move at least once.
    chain = gemm_chain(64, 64, 64, 64)
    model = MovementModel(chain, perm)
    tiles = {"m": 64, "n": 64, "k": 64, "l": 64}
    assert model.volume(tiles) >= chain.io_bytes() * (1 - 1e-9)


# ----------------------------------------------------------------------
# executor: any valid order and tiling computes the right answer
# ----------------------------------------------------------------------
@given(
    perm=st.permutations(["b", "m", "n", "k", "l"]),
    tiles=st.tuples(*(st.sampled_from([2, 3, 5, 8, 16]) for _ in range(5))),
    seed=st.integers(0, 5),
)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_softmax_chain_correct_under_any_schedule(perm, tiles, seed):
    chain = batch_gemm_chain(2, 16, 8, 8, 16, with_softmax=True)
    tile_map = dict(zip(("b", "m", "n", "k", "l"), tiles))
    tile_map["b"] = min(tile_map["b"], 2)
    program = lower_schedule(chain, perm, tile_map)
    inputs = random_inputs(chain, seed)
    got = execute_program(program, inputs)
    ref = execute_reference(chain, inputs)
    np.testing.assert_allclose(got["E"], ref["E"], rtol=1e-9, atol=1e-11)


@given(
    seed=st.integers(0, 3),
    tiles=st.tuples(*(st.sampled_from([2, 3, 4]) for _ in range(7))),
)
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_conv_chain_correct_under_random_tiling(seed, tiles):
    chain = conv_chain(1, 4, 10, 10, 6, 5, 1, 1, 3, 3)
    extents = chain.loop_extents()
    order = tuple(n for n in chain.independent_loops() if extents[n] > 1)
    tile_map = {name: tiles[i % len(tiles)] for i, name in enumerate(order)}
    program = lower_schedule(chain, order, tile_map)
    inputs = random_inputs(chain, seed)
    got = execute_program(program, inputs)
    ref = execute_reference(chain, inputs)
    np.testing.assert_allclose(got["Y2"], ref["Y2"], rtol=1e-9, atol=1e-11)


# ----------------------------------------------------------------------
# cache
# ----------------------------------------------------------------------
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 9), st.booleans(), st.integers(10, 120)),
        min_size=1,
        max_size=60,
    ),
    capacity=st.integers(100, 500),
)
@SETTINGS
def test_cache_invariants(ops, capacity):
    cache = RegionCache("L1", capacity)
    for key, write, nbytes in ops:
        cache.access(key, nbytes, write=write)
        assert cache.used_bytes <= max(capacity, 0)
    stats = cache.stats
    assert stats.accesses == len(ops)
    assert 0.0 <= stats.hit_rate <= 1.0
    cache.flush()
    assert cache.used_bytes == 0


@given(
    keys=st.lists(st.integers(0, 4), min_size=2, max_size=40),
)
@SETTINGS
def test_unbounded_cache_misses_once_per_key(keys):
    cache = RegionCache("inf", None)
    for key in keys:
        cache.access(key, 8)
    assert cache.stats.read_misses == len(set(keys))


# ----------------------------------------------------------------------
# solver
# ----------------------------------------------------------------------
@given(
    capacity_kb=st.integers(8, 2048),
    perm=st.permutations(["m", "n", "k", "l"]),
)
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_solver_always_feasible_within_bounds(capacity_kb, perm):
    chain = gemm_chain(256, 256, 256, 256)
    model = MovementModel(chain, perm)
    solution = solve_tiles(model, capacity_kb * 1024.0)
    extents = chain.loop_extents()
    for name, tile in solution.tiles.items():
        assert 1 <= tile <= extents[name]
    if solution.feasible:
        assert model.usage(solution.tiles) <= capacity_kb * 1024.0 * 1.0001
