"""Tests for the line-granularity ground-truth cache model."""

import pytest

from repro.codegen.program import lower_schedule
from repro.hardware import xeon_gold_6240
from repro.hardware.spec import HardwareSpec, MemoryLevel
from repro.ir.chains import gemm_chain
from repro.sim.linecache import (
    LineHierarchySim,
    SetAssociativeCache,
    boundary_fill_traffic,
    build_layouts,
    measure_movement_lines,
    region_lines,
)


class TestSetAssociativeCache:
    def test_hit_after_fill(self):
        cache = SetAssociativeCache("L1", 1024, line_bytes=64, ways=2)
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.stats.fill_bytes == 64

    def test_way_conflict_eviction(self):
        # 2 ways, 4 sets: three lines mapping to set 0 conflict.
        cache = SetAssociativeCache("L1", 512, line_bytes=64, ways=2)
        assert cache.num_sets == 4
        cache.access(0)
        cache.access(4)
        cache.access(8)  # evicts line 0 (LRU within set 0)
        assert not cache.access(0)

    def test_dirty_eviction_writes_back(self):
        cache = SetAssociativeCache("L1", 128, line_bytes=64, ways=1)
        cache.access(0, write=True)
        cache.access(2)  # same set (2 sets: lines 0 and 2 map to set 0)
        assert cache.stats.writeback_bytes == 64

    def test_flush_writes_back_dirty(self):
        cache = SetAssociativeCache("L1", 1024)
        cache.access(3, write=True)
        cache.access(5)
        cache.flush()
        assert cache.stats.writeback_bytes == 64

    def test_tiny_capacity_degrades_ways(self):
        cache = SetAssociativeCache("L1", 64, line_bytes=64, ways=8)
        assert cache.ways == 1


class TestWriteBackInstallation:
    """Dirty victims install into the next level out — the path that keeps
    produced-then-consumed intermediates on chip across kernel stages."""

    def _sim(self):
        levels = (
            MemoryLevel("L1", 128, 1e9),    # 2 lines at 64B, direct-mapped
            MemoryLevel("L2", 1024, 1e9),   # 16 lines
            MemoryLevel("DRAM", None, 1e9),
        )
        hw = HardwareSpec(
            name="tiny", backend="cpu", peak_flops=1e9, num_cores=1,
            levels=levels,
        )
        return LineHierarchySim(hw, ways=1)

    def test_install_is_not_demand_traffic(self):
        cache = SetAssociativeCache("L2", 1024, line_bytes=64, ways=1)
        assert cache.install(3) is None
        assert cache.stats.fill_bytes == 0
        assert cache.stats.read_misses == 0
        assert cache.access(3)  # the installed line is resident

    def test_install_cascades_its_own_dirty_victim(self):
        cache = SetAssociativeCache("L2", 128, line_bytes=64, ways=1)
        assert cache.install(0) is None
        victim = cache.install(2)  # same set: evicts dirty line 0
        assert victim == 0
        assert cache.stats.writeback_bytes == 64

    def test_evicted_dirty_line_lands_in_next_level(self):
        sim = self._sim()
        l1, l2 = sim.caches
        sim.access_line(0, write=True)
        sim.access_line(2)  # conflicts with line 0 in L1: dirty eviction
        assert l1.stats.writeback_bytes == 64
        sim.access_line(0)  # L1 miss, but L2 holds the written-back line
        assert l2.stats.read_hits == 1
        assert l2.stats.fill_bytes == 64  # only line 2 was demand-filled

    def test_flush_drains_inner_levels_outward(self):
        sim = self._sim()
        l1, l2 = sim.caches
        sim.access_line(0, write=True)
        sim.flush()
        # The dirty line pays every hop: L1 -> L2, then L2 -> DRAM, so the
        # outermost write-back counter is the true DRAM write traffic.
        assert l1.stats.writeback_bytes == 64
        assert l2.stats.writeback_bytes == 64

    def test_boundary_fill_traffic_attributes_compulsory_io(self):
        """With the full LLC, a fused chain's DRAM fills are exactly the
        compulsory input fetches; intermediates never cross the boundary."""
        chain = gemm_chain(16, 16, 16, 16)
        hw = xeon_gold_6240()
        program = lower_schedule(
            chain, ("m", "l", "k", "n"),
            {"m": 16, "l": 16, "k": 16, "n": 16},
        )
        fills = boundary_fill_traffic(
            chain, hw, program, shared_capacity_per_core=False
        )
        assert set(fills) == set(chain.tensors)
        for name in chain.input_tensors():
            assert fills[name] >= chain.tensors[name].nbytes
        for name in chain.intermediate_tensors():
            assert fills[name] == 0


class TestLayouts:
    def test_row_major_strides(self):
        chain = gemm_chain(16, 16, 16, 16)
        layouts = build_layouts(chain)
        a = layouts["A"]
        assert a.strides == (16, 1)

    def test_tensors_do_not_overlap(self):
        chain = gemm_chain(16, 16, 16, 16)
        layouts = build_layouts(chain)
        spans = []
        for name, layout in layouts.items():
            nbytes = layout.strides[0] * layout.shape[0] * layout.elem_bytes
            spans.append((layout.base * layout.elem_bytes, nbytes, name))
        spans.sort()
        for (start_a, len_a, _), (start_b, _, _) in zip(spans, spans[1:]):
            assert start_a + len_a <= start_b

    def test_region_lines_cover_rows(self):
        chain = gemm_chain(16, 16, 16, 16)
        layout = build_layouts(chain)["A"]
        spans = list(region_lines(layout, ((2, 4), (0, 16))))
        assert len(spans) == 2  # one contiguous span per row
        for first, last in spans:
            assert last >= first


class TestCrossValidation:
    def test_line_sim_confirms_region_sim_ranking(self):
        """The ground-truth line model must rank schedules the same way as
        the fast region model (and as Algorithm 1)."""
        from repro.analysis.validation import measure_movement
        from repro.core.movement import MovementModel

        chain = gemm_chain(64, 64, 64, 64)
        hw = xeon_gold_6240()
        order = ("m", "l", "k", "n")
        model = MovementModel(chain, order)

        candidates = [
            {"m": 32, "l": 32, "k": 16, "n": 16},
            {"m": 8, "l": 8, "k": 8, "n": 8},
            {"m": 16, "l": 64, "k": 8, "n": 32},
        ]
        predicted, region_measured, line_measured = [], [], []
        for tiles in candidates:
            program = lower_schedule(chain, order, tiles)
            predicted.append(model.volume(tiles))
            region_measured.append(
                measure_movement(chain, hw, order, tiles, "L1")
            )
            line_measured.append(
                measure_movement_lines(chain, hw, program, "L1")
            )
        # All three orderings agree on which candidate moves the least.
        assert (
            predicted.index(min(predicted))
            == region_measured.index(min(region_measured))
            == line_measured.index(min(line_measured))
        )

    def test_line_traffic_within_factor_of_region_traffic(self):
        from repro.analysis.validation import measure_movement

        chain = gemm_chain(64, 64, 64, 64)
        hw = xeon_gold_6240()
        order = ("m", "l", "k", "n")
        tiles = {"m": 16, "l": 16, "k": 16, "n": 16}
        program = lower_schedule(chain, order, tiles)
        region = measure_movement(chain, hw, order, tiles, "L1")
        lines = measure_movement_lines(chain, hw, program, "L1")
        # Line granularity rounds regions up to 64B lines; agreement within
        # 2x validates the fast model's accounting.
        assert 0.5 <= lines / region <= 2.0
