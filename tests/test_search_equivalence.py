"""Search-strategy equivalence: policy changes speed, never the plan.

Every (workload, hardware preset) pair is compiled under the exhaustive
serial baseline and under pruning + memoization (plus, in the slow suite, a
two-worker process pool), and the serialized plans must match **byte for
byte** — the guarantee that lets deployments turn the fast path on without
revalidating results.

The same guarantee covers the movement-model engines: the compiled tables
engine (``REPRO_MODEL_ENGINE=tables``) replays the scalar reference's exact
floating-point operation sequence, so the sweep below also asserts plans
are byte-identical between engines across GEMM + conv workloads and every
hardware preset.
"""

import json
import os

import pytest

from repro.core.optimizer import ChimeraOptimizer
from repro.core.search import SearchPolicy, reset_search_stats, solve_memo
from repro.core.tables import clear_tables_memo
from repro.hardware import all_presets
from repro.ir.chains import batch_gemm_chain, conv_chain
from repro.runtime.serialization import plan_to_dict

PRESETS = all_presets()


def gemm_workload():
    return batch_gemm_chain(1, 128, 64, 64, 128, name="equiv_gemm")


def conv_workload():
    return conv_chain(1, 16, 28, 28, 24, 16, 1, 1, 3, 1, name="equiv_conv")


WORKLOADS = [gemm_workload, conv_workload]


def serialized_plan(chain, hw, policy, engine=None):
    solve_memo().clear()
    reset_search_stats()
    clear_tables_memo()
    plan = ChimeraOptimizer(hw, policy=policy, engine=engine).optimize(chain)
    return json.dumps(plan_to_dict(plan), sort_keys=True)


def env_workers():
    """The CI smoke step exercises the pool via REPRO_SEARCH_WORKERS."""
    try:
        return max(1, int(os.environ.get("REPRO_SEARCH_WORKERS", "1")))
    except ValueError:
        return 1


@pytest.mark.parametrize("hw", PRESETS, ids=lambda h: h.name)
@pytest.mark.parametrize(
    "build", WORKLOADS, ids=["gemm_chain", "conv_chain"]
)
class TestSearchEquivalence:
    def test_pruned_memoized_plan_is_byte_identical(self, build, hw):
        chain = build()
        baseline = serialized_plan(chain, hw, SearchPolicy.exhaustive())
        fast = serialized_plan(
            chain, hw, SearchPolicy(prune=True, memoize=True, workers=1)
        )
        assert fast == baseline

    def test_warm_memo_replays_identically(self, build, hw):
        chain = build()
        policy = SearchPolicy(prune=True, memoize=True, workers=1)
        solve_memo().clear()
        reset_search_stats()
        optimizer = ChimeraOptimizer(hw, policy=policy)
        cold = json.dumps(plan_to_dict(optimizer.optimize(chain)),
                          sort_keys=True)
        warm = json.dumps(plan_to_dict(optimizer.optimize(chain)),
                          sort_keys=True)
        assert warm == cold

    def test_parallel_plan_is_byte_identical(self, build, hw):
        workers = env_workers()
        if workers <= 1:
            pytest.skip("set REPRO_SEARCH_WORKERS>=2 to exercise the pool")
        chain = build()
        baseline = serialized_plan(chain, hw, SearchPolicy.exhaustive())
        parallel = serialized_plan(
            chain,
            hw,
            SearchPolicy(prune=True, memoize=True, workers=workers),
        )
        assert parallel == baseline


@pytest.mark.parametrize("hw", PRESETS, ids=lambda h: h.name)
@pytest.mark.parametrize(
    "build", WORKLOADS, ids=["gemm_chain", "conv_chain"]
)
class TestEngineEquivalence:
    """Scalar vs. tables engines must pick byte-identical plans."""

    def test_tables_plan_is_byte_identical(self, build, hw):
        chain = build()
        policy = SearchPolicy(prune=True, memoize=True, workers=1)
        scalar = serialized_plan(chain, hw, policy, engine="scalar")
        tables = serialized_plan(chain, hw, policy, engine="tables")
        assert tables == scalar

    def test_tables_exhaustive_plan_is_byte_identical(self, build, hw):
        chain = build()
        scalar = serialized_plan(
            chain, hw, SearchPolicy.exhaustive(), engine="scalar"
        )
        tables = serialized_plan(
            chain, hw, SearchPolicy.exhaustive(), engine="tables"
        )
        assert tables == scalar


@pytest.mark.slow
@pytest.mark.parametrize("hw", PRESETS, ids=lambda h: h.name)
@pytest.mark.parametrize("name", ["G1", "G4", "C4", "C6"])
def test_engine_plan_sweep_paper_workloads(name, hw):
    """Byte-identical-plan sweep over Table IV/V workloads × presets."""
    from repro.workloads import conv_chain_config, gemm_chain_config

    if name.startswith("G"):
        chain = gemm_chain_config(name).build()
    else:
        chain = conv_chain_config(name).build()
    policy = SearchPolicy(prune=True, memoize=True, workers=1)
    scalar = serialized_plan(chain, hw, policy, engine="scalar")
    tables = serialized_plan(chain, hw, policy, engine="tables")
    assert tables == scalar


@pytest.mark.slow
def test_parallel_two_workers_matches_exhaustive():
    """The pool path must agree even without the env opt-in (slow suite)."""
    chain = gemm_workload()
    hw = PRESETS[0]
    baseline = serialized_plan(chain, hw, SearchPolicy.exhaustive())
    parallel = serialized_plan(
        chain, hw, SearchPolicy(prune=False, memoize=False, workers=2)
    )
    assert parallel == baseline
