"""Search-strategy equivalence: policy changes speed, never the plan.

Every (workload, hardware preset) pair is compiled under the exhaustive
serial baseline and under pruning + memoization (plus, in the slow suite, a
two-worker process pool), and the serialized plans must match **byte for
byte** — the guarantee that lets deployments turn the fast path on without
revalidating results.

The same guarantee covers the movement-model engines: the compiled tables
engine (``REPRO_MODEL_ENGINE=tables``) replays the scalar reference's exact
floating-point operation sequence, so the sweep below also asserts plans
are byte-identical between engines across GEMM + conv workloads and every
hardware preset.
"""

import json
import os

import pytest

from repro.core.optimizer import ChimeraOptimizer
from repro.core.search import SearchPolicy, reset_search_stats, solve_memo
from repro.core.tables import clear_tables_memo
from repro.hardware import all_presets, multicore_presets
from repro.ir.chains import batch_gemm_chain, conv_chain
from repro.runtime.serialization import plan_to_dict

PRESETS = all_presets() + multicore_presets()


def gemm_workload():
    return batch_gemm_chain(1, 128, 64, 64, 128, name="equiv_gemm")


def conv_workload():
    return conv_chain(1, 16, 28, 28, 24, 16, 1, 1, 3, 1, name="equiv_conv")


WORKLOADS = [gemm_workload, conv_workload]


def serialized_plan(chain, hw, policy, engine=None):
    solve_memo().clear()
    reset_search_stats()
    clear_tables_memo()
    plan = ChimeraOptimizer(hw, policy=policy, engine=engine).optimize(chain)
    return json.dumps(plan_to_dict(plan), sort_keys=True)


def env_workers():
    """The CI smoke step exercises the pool via REPRO_SEARCH_WORKERS."""
    try:
        return max(1, int(os.environ.get("REPRO_SEARCH_WORKERS", "1")))
    except ValueError:
        return 1


@pytest.mark.parametrize("hw", PRESETS, ids=lambda h: h.name)
@pytest.mark.parametrize(
    "build", WORKLOADS, ids=["gemm_chain", "conv_chain"]
)
class TestSearchEquivalence:
    def test_pruned_memoized_plan_is_byte_identical(self, build, hw):
        chain = build()
        baseline = serialized_plan(chain, hw, SearchPolicy.exhaustive())
        fast = serialized_plan(
            chain, hw, SearchPolicy(prune=True, memoize=True, workers=1)
        )
        assert fast == baseline

    def test_warm_memo_replays_identically(self, build, hw):
        chain = build()
        policy = SearchPolicy(prune=True, memoize=True, workers=1)
        solve_memo().clear()
        reset_search_stats()
        optimizer = ChimeraOptimizer(hw, policy=policy)
        cold = json.dumps(plan_to_dict(optimizer.optimize(chain)),
                          sort_keys=True)
        warm = json.dumps(plan_to_dict(optimizer.optimize(chain)),
                          sort_keys=True)
        assert warm == cold

    def test_parallel_plan_is_byte_identical(self, build, hw):
        workers = env_workers()
        if workers <= 1:
            pytest.skip("set REPRO_SEARCH_WORKERS>=2 to exercise the pool")
        chain = build()
        baseline = serialized_plan(chain, hw, SearchPolicy.exhaustive())
        parallel = serialized_plan(
            chain,
            hw,
            SearchPolicy(prune=True, memoize=True, workers=workers),
        )
        assert parallel == baseline


@pytest.mark.parametrize("hw", PRESETS, ids=lambda h: h.name)
@pytest.mark.parametrize(
    "build", WORKLOADS, ids=["gemm_chain", "conv_chain"]
)
class TestEngineEquivalence:
    """Scalar vs. tables engines must pick byte-identical plans."""

    def test_tables_plan_is_byte_identical(self, build, hw):
        chain = build()
        policy = SearchPolicy(prune=True, memoize=True, workers=1)
        scalar = serialized_plan(chain, hw, policy, engine="scalar")
        tables = serialized_plan(chain, hw, policy, engine="tables")
        assert tables == scalar

    def test_tables_exhaustive_plan_is_byte_identical(self, build, hw):
        chain = build()
        scalar = serialized_plan(
            chain, hw, SearchPolicy.exhaustive(), engine="scalar"
        )
        tables = serialized_plan(
            chain, hw, SearchPolicy.exhaustive(), engine="tables"
        )
        assert tables == scalar


@pytest.mark.parametrize(
    "hw", multicore_presets(), ids=lambda h: h.name
)
class TestMulticoreEngineEquivalence:
    """Fusion decisions on link-bearing presets must not depend on the
    engine: the partitioned-placement search batches its communication
    volumes through the tables engine, and the whole decision (including
    the chosen core count) must serialize byte-identically to scalar."""

    def test_decision_is_byte_identical(self, hw):
        from repro.core.fusion import decide_fusion

        chain = batch_gemm_chain(
            8, 256, 64, 64, 256, with_softmax=True, name="equiv_mc"
        )
        decisions = {}
        saved = os.environ.get("REPRO_MODEL_ENGINE")
        try:
            for engine in ("scalar", "tables"):
                os.environ["REPRO_MODEL_ENGINE"] = engine
                solve_memo().clear()
                reset_search_stats()
                clear_tables_memo()
                decision = decide_fusion(chain, hw)
                decisions[engine] = json.dumps(
                    {
                        "use_fusion": decision.use_fusion,
                        "fused": plan_to_dict(decision.fused_plan),
                        "unfused": [
                            plan_to_dict(p)
                            for p in decision.unfused_plans
                        ],
                    },
                    sort_keys=True,
                )
        finally:
            if saved is None:
                os.environ.pop("REPRO_MODEL_ENGINE", None)
            else:
                os.environ["REPRO_MODEL_ENGINE"] = saved
        assert decisions["tables"] == decisions["scalar"]


def perturbed_gemm():
    """Same structure as :func:`gemm_workload`, different extents."""
    return batch_gemm_chain(1, 112, 64, 72, 128, name="equiv_gemm_p")


def perturbed_conv():
    """Same structure as :func:`conv_workload`, different extents."""
    return conv_chain(1, 16, 26, 26, 24, 16, 1, 1, 3, 1, name="equiv_conv_p")


WARM_PAIRS = [
    (gemm_workload, perturbed_gemm),
    (conv_workload, perturbed_conv),
]


def canonical_decision(served):
    decision = served.result.decision
    return json.dumps(
        {
            "use_fusion": decision.use_fusion,
            "fused": (
                None
                if decision.fused_plan is None
                else plan_to_dict(decision.fused_plan)
            ),
            "unfused": [
                plan_to_dict(plan) for plan in decision.unfused_plans
            ],
        },
        sort_keys=True,
    )


def clear_global_memos():
    """Hints must prove equivalence on their own, not via shared memos."""
    solve_memo().clear()
    reset_search_stats()
    clear_tables_memo()


@pytest.mark.parametrize("hw", PRESETS, ids=lambda h: h.name)
@pytest.mark.parametrize(
    "pair", WARM_PAIRS, ids=["gemm_chain", "conv_chain"]
)
class TestWarmStartEquivalence:
    """Cold, exact-hit and near-miss warm-started compiles must agree.

    The service's shape index turns a miss on a new shape into a compile
    warm-started from the nearest same-structure cached plan.  Warm starts
    are latency-only (see :mod:`repro.core.warmstart`), so every path must
    produce byte-identical plans.
    """

    def test_cold_exact_and_near_are_byte_identical(self, pair, hw):
        from repro.service import WARM_EXACT, WARM_NEAR, CompileService

        build_base, build_near = pair
        warm_service = CompileService(warm_start=True)
        clear_global_memos()
        seeded = warm_service.serve((build_base(), hw))
        assert seeded.warm_start == "cold"

        # Near miss: new extents, same structure -> warm-started compile.
        clear_global_memos()
        near = warm_service.serve((build_near(), hw))
        assert near.source == "compiled"
        assert near.warm_start == WARM_NEAR

        # Exact hit: the same request replays the cached plan verbatim.
        exact = warm_service.serve((build_near(), hw))
        assert exact.from_cache
        assert exact.warm_start == WARM_EXACT
        assert canonical_decision(exact) == canonical_decision(near)

        # Cold twin: a warm-start-disabled service compiling the same
        # shape from scratch must land on the same bytes.
        cold_service = CompileService(warm_start=False)
        clear_global_memos()
        cold = cold_service.serve((build_near(), hw))
        assert cold.warm_start == "cold"
        assert canonical_decision(near) == canonical_decision(cold)

    def test_adversarial_wrong_neighbor_hint_is_harmless(self, pair, hw):
        """A hint from an unrelated chain must not change the plan.

        The order hint matches no candidate permutation (different loop
        names), so it is ignored; foreign tile values at most start SLSQP
        somewhere unhelpful, and the solver's fallback sweep still proves
        the optimum.
        """
        from repro.core.warmstart import plan_hint_from_dict

        build_base, build_near = pair
        chain = build_near()
        # The "wrong neighbor": the other family's plan on the same
        # hardware (conv hints for gemm and vice versa).
        other = (
            conv_workload() if build_base is gemm_workload else gemm_workload()
        )
        clear_global_memos()
        wrong_plan = ChimeraOptimizer(hw).optimize(other)
        wrong_hint = plan_hint_from_dict(plan_to_dict(wrong_plan))
        assert wrong_hint is not None

        baseline = serialized_plan(
            chain, hw, SearchPolicy(prune=True, memoize=True, workers=1)
        )
        clear_global_memos()
        hinted = ChimeraOptimizer(
            hw, policy=SearchPolicy(prune=True, memoize=True, workers=1)
        ).optimize(chain, hint=wrong_hint)
        assert json.dumps(plan_to_dict(hinted), sort_keys=True) == baseline


@pytest.mark.slow
@pytest.mark.parametrize("hw", PRESETS, ids=lambda h: h.name)
@pytest.mark.parametrize("name", ["G1", "G4", "C4", "C6"])
def test_engine_plan_sweep_paper_workloads(name, hw):
    """Byte-identical-plan sweep over Table IV/V workloads × presets."""
    from repro.workloads import conv_chain_config, gemm_chain_config

    if name.startswith("G"):
        chain = gemm_chain_config(name).build()
    else:
        chain = conv_chain_config(name).build()
    policy = SearchPolicy(prune=True, memoize=True, workers=1)
    scalar = serialized_plan(chain, hw, policy, engine="scalar")
    tables = serialized_plan(chain, hw, policy, engine="tables")
    assert tables == scalar


@pytest.mark.slow
def test_parallel_two_workers_matches_exhaustive():
    """The pool path must agree even without the env opt-in (slow suite)."""
    chain = gemm_workload()
    hw = PRESETS[0]
    baseline = serialized_plan(chain, hw, SearchPolicy.exhaustive())
    parallel = serialized_plan(
        chain, hw, SearchPolicy(prune=False, memoize=False, workers=2)
    )
    assert parallel == baseline
