"""Tests for the always-on compilation server (repro.serving)."""

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.runtime.pipeline import CompileResult
from repro.hardware import xeon_gold_6240
from repro.ir.chains import batch_gemm_chain
from repro.runtime.serialization import FORMAT_VERSION
from repro.service import CompileService, cache_key
from repro.serving import (
    STATUS_BAD_REQUEST,
    STATUS_DRAINING,
    STATUS_ERROR,
    STATUS_REJECTED,
    TIER_BATCH,
    TIER_INTERACTIVE,
    AdmissionController,
    AsyncServingClient,
    BackgroundServer,
    ProtocolError,
    QuotaManager,
    Rejected,
    ServerConfig,
    ServerError,
    ServingClient,
    TokenBucket,
    compile_message,
    http_get,
    parse_compile_request,
)
from repro.serving.protocol import parse_tenant, parse_tier

HW = xeon_gold_6240()


def small_bmm(name=None):
    return batch_gemm_chain(2, 64, 32, 32, 64, name=name)


def synthetic_entry(key, payload_bytes=0):
    return {
        "format_version": FORMAT_VERSION,
        "key": key,
        "chain": "synthetic",
        "hardware": HW.name,
        "use_fusion": True,
        "fused_plan": {"stub": True, "pad": "x" * payload_bytes},
        "unfused_plans": [],
    }


def fast_service(delay=0.0, **kwargs):
    """A CompileService whose compiles are instant synthetic entries."""
    service = CompileService(**kwargs)

    def fake(request, key):
        if delay:
            time.sleep(delay)
        return synthetic_entry(key), "compiled", None, "cold"

    service._compile_with_recovery = fake
    return service


# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_wire_round_trip_recomputes_key(self):
        chain = small_bmm()
        message = compile_message(chain, "xeon-gold-6240")
        rebuilt = parse_compile_request(
            json.loads(json.dumps(message))  # force a full wire round trip
        )
        assert rebuilt.key == cache_key(chain, HW)

    def test_hardware_dict_and_preset_agree(self):
        chain = small_bmm()
        via_preset = parse_compile_request(
            compile_message(chain, "xeon-gold-6240")
        )
        via_dict = parse_compile_request(compile_message(chain, HW))
        assert via_preset.key == via_dict.key

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda m: m.pop("chain"),
            lambda m: m.update(chain=[1, 2]),
            lambda m: m.update(chain={"nonsense": True}),
            lambda m: m.pop("hardware"),
            lambda m: m.update(hardware="no-such-preset"),
            lambda m: m.update(config={"no_such_field": 1}),
            lambda m: m.update(config="not-a-dict"),
            lambda m: m.update(force_fusion="yes"),
        ],
    )
    def test_malformed_compiles_raise_protocol_error(self, mutate):
        message = compile_message(small_bmm(), "xeon-gold-6240")
        mutate(message)
        with pytest.raises(ProtocolError):
            parse_compile_request(message)

    def test_tier_and_tenant_parsing(self):
        assert parse_tier({}) == TIER_INTERACTIVE
        assert parse_tier({"tier": TIER_BATCH}) == TIER_BATCH
        assert parse_tenant({}) == "default"
        assert parse_tenant({"tenant": "team-a"}) == "team-a"
        with pytest.raises(ProtocolError):
            parse_tier({"tier": "realtime"})
        with pytest.raises(ProtocolError):
            parse_tenant({"tenant": ""})
        with pytest.raises(ProtocolError):
            parse_tenant({"tenant": 7})


# ----------------------------------------------------------------------
# admission
# ----------------------------------------------------------------------
def run(coro):
    return asyncio.run(coro)


class TestAdmission:
    def test_interactive_dispatched_before_batch(self):
        async def scenario():
            admission = AdmissionController(
                interactive_capacity=4, batch_capacity=4
            )
            admission.submit(TIER_BATCH, "b1")
            admission.submit(TIER_INTERACTIVE, "i1")
            admission.submit(TIER_BATCH, "b2")
            admission.submit(TIER_INTERACTIVE, "i2")
            return [await admission.next_job() for _ in range(4)]

        assert run(scenario()) == ["i1", "i2", "b1", "b2"]

    def test_full_queue_sheds_with_retry_after(self):
        admission = AdmissionController(
            interactive_capacity=2, batch_capacity=2, workers=2
        )
        admission.submit(TIER_INTERACTIVE, "a")
        admission.submit(TIER_INTERACTIVE, "b")
        with pytest.raises(Rejected) as info:
            admission.submit(TIER_INTERACTIVE, "c")
        assert info.value.status == STATUS_REJECTED
        assert info.value.retry_after > 0
        assert admission.shed[TIER_INTERACTIVE] == 1
        # the batch queue still has room
        admission.submit(TIER_BATCH, "d")

    def test_draining_refuses_submissions(self):
        admission = AdmissionController()
        admission.start_draining()
        with pytest.raises(Rejected) as info:
            admission.submit(TIER_INTERACTIVE, "x")
        assert info.value.status == STATUS_DRAINING

    def test_retry_after_tracks_service_estimate(self):
        admission = AdmissionController(workers=1)
        before = admission.retry_after(TIER_INTERACTIVE)
        for _ in range(50):
            admission.observe_service(TIER_INTERACTIVE, 2.0)
        assert admission.retry_after(TIER_INTERACTIVE) > before

    def test_batch_retry_after_counts_interactive_backlog(self):
        """Strict-priority dispatch: a batch job waits behind every queued
        interactive job, so the batch hint must grow with interactive
        depth (the regression was a hint computed from batch depth
        alone)."""
        admission = AdmissionController(
            interactive_capacity=16, batch_capacity=16, workers=2
        )
        # Pin the estimates so the expectation is exact.
        for _ in range(200):
            admission.observe_service(TIER_INTERACTIVE, 1.0)
            admission.observe_service(TIER_BATCH, 3.0)
        empty_hint = admission.retry_after(TIER_BATCH)
        for i in range(8):
            admission.submit(TIER_INTERACTIVE, f"i{i}")
        loaded_hint = admission.retry_after(TIER_BATCH)
        assert loaded_hint > empty_hint
        # (0 batch queued + retry slot) * ~3s + 8 interactive * ~1s, over
        # 2 workers = ~5.5s.
        assert loaded_hint == pytest.approx(5.5, rel=0.05)
        # The interactive hint is unaffected by batch backlog: nothing
        # dispatches ahead of the top tier.
        for i in range(8):
            admission.submit(TIER_BATCH, f"b{i}")
        assert admission.retry_after(
            TIER_INTERACTIVE
        ) == pytest.approx((8 + 1) * 1.0 / 2, rel=0.05)

    def test_snapshot_shape(self):
        admission = AdmissionController()
        admission.submit(TIER_BATCH, "j")
        snap = admission.snapshot()
        assert snap[TIER_BATCH]["depth"] == 1
        assert snap[TIER_BATCH]["admitted"] == 1
        assert snap[TIER_INTERACTIVE]["depth"] == 0
        for tier in snap.values():
            assert set(tier) == {
                "depth",
                "capacity",
                "admitted",
                "completed",
                "shed",
                "service_estimate_seconds",
            }


# ----------------------------------------------------------------------
# quotas
# ----------------------------------------------------------------------
class TestQuotas:
    def test_token_bucket_refills_over_time(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        now = 100.0
        assert bucket.try_take(now)
        assert bucket.try_take(now)
        assert not bucket.try_take(now)
        assert bucket.seconds_until_token(now) == pytest.approx(0.1)
        assert bucket.try_take(now + 0.11)

    def test_rate_limit_rejects_with_retry_after(self):
        quotas = QuotaManager(rate=0.001, burst=1.0)
        quotas.admit("t")
        with pytest.raises(Rejected) as info:
            quotas.admit("t")
        assert info.value.status == STATUS_REJECTED
        assert info.value.retry_after > 0

    def test_inflight_quota_and_release(self):
        quotas = QuotaManager(max_inflight=2)
        quotas.admit("t")
        quotas.admit("t")
        with pytest.raises(Rejected):
            quotas.admit("t")
        quotas.release("t")
        quotas.admit("t")  # freed slot admits again
        snap = quotas.snapshot()["t"]
        assert snap["rejected_inflight"] == 1
        assert snap["inflight"] == 2

    def test_limits_of_zero_disable_checks(self):
        quotas = QuotaManager()
        for _ in range(100):
            quotas.admit("t")

    def test_overrides_apply_per_tenant(self):
        quotas = QuotaManager(
            max_inflight=0, overrides={"noisy": {"max_inflight": 1}}
        )
        quotas.admit("noisy")
        with pytest.raises(Rejected):
            quotas.admit("noisy")
        for _ in range(5):
            quotas.admit("quiet")

    def test_tenants_are_isolated(self):
        quotas = QuotaManager(rate=0.001, burst=1.0)
        quotas.admit("a")
        quotas.admit("b")  # b's bucket is untouched by a's spend


# ----------------------------------------------------------------------
# end-to-end over a real compile
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def live_server():
    config = ServerConfig(port=0, workers=2, shards=2, compact_interval=0)
    with BackgroundServer(config) as bg:
        yield bg


class TestEndToEnd:
    def test_cold_then_warm_then_decode(self, live_server):
        chain = small_bmm("e2e")
        with ServingClient(live_server.host, live_server.port) as client:
            cold = client.compile(chain, "xeon-gold-6240", check=True)
            warm = client.compile(chain, "xeon-gold-6240", check=True)
        assert cold.key == warm.key == cache_key(chain, HW)
        assert not cold.from_cache
        assert warm.from_cache and warm.source == "memory"
        result = warm.decode("xeon-gold-6240")
        assert isinstance(result, CompileResult)
        assert result.kernels
        # warm service time skips the optimizer entirely
        assert warm.service_seconds < cold.service_seconds

    def test_stats_and_metrics_invariant(self, live_server):
        chain = small_bmm("e2e-stats")
        with ServingClient(live_server.host, live_server.port) as client:
            client.compile(chain, "xeon-gold-6240", check=True)
            stats = client.stats()
        assert stats["requests"] == (
            stats["hits"] + stats["misses"] + stats["coalesced"]
        )
        serving = stats["serving"]
        assert serving["draining"] is False
        assert serving["workers"] == 2
        assert set(serving["queues"]) == {TIER_INTERACTIVE, TIER_BATCH}
        assert "serve_warm" in stats["latencies"] or stats["requests"] > 0

    def test_ping(self, live_server):
        with ServingClient(live_server.host, live_server.port) as client:
            assert client.ping()

    def test_http_stats_healthz_and_404(self, live_server):
        host, port = live_server.host, live_server.port
        status, body = http_get(host, port, "/healthz")
        assert status == 200 and body["ok"] is True
        status, body = http_get(host, port, "/stats")
        assert status == 200
        assert body["requests"] >= 0 and "serving" in body
        status, body = http_get(host, port, "/nope")
        assert status == 404 and body["ok"] is False

    def test_malformed_requests_get_400(self, live_server):
        async def scenario():
            client = await AsyncServingClient.open(
                live_server.host, live_server.port
            )
            bad_chain = await client.send_raw(
                {"op": "compile", "chain": {"junk": 1}, "hardware": "a100"}
            )
            bad_op = await client.send_raw({"op": "explode"})
            await client.close()
            return bad_chain, bad_op

        bad_chain, bad_op = run(scenario())
        assert not bad_chain["ok"]
        assert bad_chain["status"] == STATUS_BAD_REQUEST
        assert not bad_op["ok"] and bad_op["status"] == STATUS_BAD_REQUEST

    def test_invalid_json_line_gets_400_not_disconnect(self, live_server):
        with socket.create_connection(
            (live_server.host, live_server.port), timeout=10
        ) as sock:
            sock.sendall(b"this is not json\n")
            reply = json.loads(sock.makefile("rb").readline())
        assert reply["ok"] is False
        assert reply["status"] == STATUS_BAD_REQUEST

    def test_async_pipelining_warm_hits(self, live_server):
        chain = small_bmm("e2e-pipeline")

        async def scenario():
            client = await AsyncServingClient.open(
                live_server.host, live_server.port
            )
            await client.compile(chain, "xeon-gold-6240", check=True)
            replies = await asyncio.gather(
                *(
                    client.compile(
                        chain, "xeon-gold-6240", tier=TIER_BATCH, check=True
                    )
                    for _ in range(32)
                )
            )
            await client.close()
            return replies

        replies = run(scenario())
        assert len(replies) == 32
        assert all(reply.from_cache for reply in replies)

    def test_check_raises_server_error(self, live_server):
        async def scenario():
            client = await AsyncServingClient.open(
                live_server.host, live_server.port
            )
            try:
                reply = await client.send_raw({"op": "compile"})
            finally:
                await client.close()
            return reply

        reply = run(scenario())
        assert reply["status"] == STATUS_BAD_REQUEST


# ----------------------------------------------------------------------
# shedding, quotas, and failures through the wire
# ----------------------------------------------------------------------
class TestAdmissionOverWire:
    def test_queue_full_sheds_429_with_retry_after(self):
        service = fast_service(delay=0.15)
        config = ServerConfig(
            port=0,
            workers=1,
            interactive_queue=1,
            batch_queue=1,
            compact_interval=0,
        )
        with BackgroundServer(config, service=service) as bg:

            async def scenario():
                client = await AsyncServingClient.open(bg.host, bg.port)
                sends = [
                    client.compile(
                        small_bmm(f"shed-{i}"), "xeon-gold-6240"
                    )
                    for i in range(8)
                ]
                replies = await asyncio.gather(*sends)
                await client.close()
                return replies

            replies = run(scenario())
        shed = [r for r in replies if r.status == STATUS_REJECTED]
        served = [r for r in replies if r.ok]
        assert served, "some requests must be admitted"
        assert shed, "an 8-deep burst into a 1-slot queue must shed"
        assert all(r.retry_after > 0 for r in shed)
        stats = service.metrics.snapshot()
        assert stats["requests"] == (
            stats["hits"] + stats["misses"] + stats["coalesced"]
        )

    def test_tenant_rate_limit_over_wire(self):
        service = fast_service()
        config = ServerConfig(
            port=0,
            workers=1,
            tenant_rate=0.001,
            tenant_burst=1.0,
            compact_interval=0,
        )
        with BackgroundServer(config, service=service) as bg:
            with ServingClient(bg.host, bg.port, tenant="limited") as client:
                first = client.compile(small_bmm("rate-a"), "xeon-gold-6240")
                assert first.ok
                second = client.compile(
                    small_bmm("rate-b"), "xeon-gold-6240"
                )
        assert second.status == STATUS_REJECTED
        assert second.retry_after > 0
        with pytest.raises(ServerError):
            second.raise_for_status()

    def test_compile_failure_maps_to_500(self):
        service = CompileService()

        def always_fail(request, key):
            return None, "fallback", "RuntimeError: injected", "cold"

        service._compile_with_recovery = always_fail
        config = ServerConfig(port=0, workers=1, compact_interval=0)
        with BackgroundServer(config, service=service) as bg:
            with ServingClient(bg.host, bg.port) as client:
                reply = client.compile(small_bmm("fail"), "xeon-gold-6240")
        assert reply.status == STATUS_ERROR
        assert "injected" in reply.error


# ----------------------------------------------------------------------
# drain + hot restart
# ----------------------------------------------------------------------
class TestDrainAndRestart:
    def test_drain_completes_every_admitted_request(self):
        service = fast_service(delay=0.05)
        config = ServerConfig(port=0, workers=2, compact_interval=0)
        bg = BackgroundServer(config, service=service).start()
        try:
            replies = []

            def client_thread():
                with ServingClient(bg.host, bg.port) as client:
                    for i in range(6):
                        replies.append(
                            client.compile(
                                small_bmm(f"drain-{i}"), "xeon-gold-6240"
                            )
                        )

            thread = threading.Thread(target=client_thread)
            thread.start()
            time.sleep(0.12)  # a few requests in flight mid-drain
            bg.drain()
            thread.join(timeout=30)
            assert not thread.is_alive()
            snap = bg.stats()["serving"]
        finally:
            bg.stop()
        admitted = [r for r in replies if r.status != STATUS_DRAINING]
        assert admitted, "requests sent before the drain must be admitted"
        assert all(r.ok for r in admitted), (
            "every admitted request must complete during the drain: "
            f"{[r.error for r in admitted if not r.ok]}"
        )
        for tier in snap["queues"].values():
            assert tier["depth"] == 0
            assert tier["admitted"] == tier["completed"]

    def test_drained_listener_refuses_new_connections(self):
        service = fast_service()
        config = ServerConfig(port=0, workers=1, compact_interval=0)
        bg = BackgroundServer(config, service=service).start()
        try:
            host, port = bg.host, bg.port
            bg.drain()
            with pytest.raises(OSError):
                socket.create_connection((host, port), timeout=2).close()
        finally:
            bg.stop()

    def test_checkpoint_restore_and_cache_rewarm(self, tmp_path):
        cache_dir = str(tmp_path / "plans")
        service = fast_service(cache_dir=cache_dir, shards=2)
        config = ServerConfig(
            port=0, workers=1, cache_dir=cache_dir, shards=2,
            compact_interval=0,
        )
        with BackgroundServer(config, service=service) as bg:
            with ServingClient(bg.host, bg.port) as client:
                for i in range(3):
                    client.compile(
                        small_bmm(f"restart-{i}"), "xeon-gold-6240",
                        check=True,
                    )
            bg.drain()
        assert (tmp_path / "plans" / "server-state.json").exists()

        service2 = fast_service(cache_dir=cache_dir, shards=2)
        with BackgroundServer(config, service=service2) as bg2:
            stats = bg2.stats()
            assert stats["serving"]["warmed_entries"] == 3
            assert stats["serving"]["restored_counters"] is True
            assert stats["requests"] >= 3  # counters carried across restart
            # re-warmed entries serve from memory without recompiling
            with ServingClient(bg2.host, bg2.port) as client:
                reply = client.compile(
                    small_bmm("restart-0"), "xeon-gold-6240", check=True
                )
        assert reply.source == "memory"
