"""Tests for the memory-hierarchy simulator."""

import pytest

from repro.codegen.program import lower_schedule
from repro.core.fusion import decide_fusion
from repro.hardware import xeon_gold_6240
from repro.hardware.spec import HardwareSpec, MemoryLevel
from repro.ir.chains import batch_gemm_chain, gemm_chain
from repro.sim import (
    MemoryHierarchySim,
    RegionCache,
    SimConfig,
    movement_times,
    roofline_time,
    simulate_plan,
    simulate_program,
    simulate_sequence,
    trace_program,
)


class TestRegionCache:
    def test_hit_after_fill(self):
        cache = RegionCache("L1", 1024)
        assert not cache.access("a", 100)
        assert cache.access("a", 100)
        assert cache.stats.read_hits == 1
        assert cache.stats.read_misses == 1
        assert cache.stats.fill_bytes == 100

    def test_lru_eviction_order(self):
        cache = RegionCache("L1", 250)
        cache.access("a", 100)
        cache.access("b", 100)
        cache.access("a", 100)  # refresh a
        cache.access("c", 100)  # evicts b (LRU)
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_write_allocate_without_fetch(self):
        cache = RegionCache("L1", 1024)
        cache.access("a", 100, write=True)
        assert cache.stats.fill_bytes == 0
        assert cache.stats.write_misses == 1

    def test_dirty_eviction_writes_back(self):
        spills = []
        cache = RegionCache(
            "L1", 150, on_evict=lambda k, n, d: spills.append((k, n, d))
        )
        cache.access("a", 100, write=True)
        cache.access("b", 100)  # evicts dirty a
        assert spills == [("a", 100, True)]
        assert cache.stats.writeback_bytes == 100

    def test_oversized_region_streams(self):
        cache = RegionCache("L1", 64)
        assert not cache.access("huge", 1000)
        assert "huge" not in cache

    def test_flush_drains_dirty(self):
        cache = RegionCache("L1", 1024)
        cache.access("a", 100, write=True)
        cache.access("b", 100)
        cache.flush()
        assert cache.used_bytes == 0
        assert cache.stats.writeback_bytes == 100

    def test_hit_rate(self):
        cache = RegionCache("L1", 1024)
        cache.access("a", 10)
        cache.access("a", 10)
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            RegionCache("L1", 0)


class TestHierarchy:
    def _tiny_hw(self):
        return HardwareSpec(
            name="tiny",
            backend="cpu",
            peak_flops=1e12,
            num_cores=1,
            levels=(
                MemoryLevel("L1", 256, 4e9),
                MemoryLevel("L2", 1024, 2e9),
                MemoryLevel("DRAM", None, 1e9),
            ),
        )

    def test_read_fills_all_missing_levels(self):
        sim = MemoryHierarchySim(self._tiny_hw())
        sim.read("a", 100)
        traffic = sim.boundary_traffic()
        assert traffic["L1"] == 100 and traffic["L2"] == 100

    def test_l2_serves_l1_capacity_miss(self):
        sim = MemoryHierarchySim(self._tiny_hw())
        sim.read("a", 100)
        sim.read("b", 100)
        sim.read("c", 100)  # evicts a from L1 (capacity 256)
        sim.read("a", 100)  # L1 miss, L2 hit
        traffic = sim.boundary_traffic()
        assert traffic["L1"] == 400
        assert traffic["L2"] == 300  # a fetched from DRAM only once

    def test_writeback_chains_outward(self):
        sim = MemoryHierarchySim(self._tiny_hw())
        sim.write("w", 100)
        sim.read("a", 100)
        sim.read("b", 100)  # w evicted dirty into L2
        sim.flush()
        # w eventually reaches DRAM: counted at L2's boundary.
        assert sim.boundary_traffic()["L2"] >= 100

    def test_shared_capacity_per_core(self):
        hw = xeon_gold_6240()
        per_core = MemoryHierarchySim(hw, SimConfig(True))
        full = MemoryHierarchySim(hw, SimConfig(False))
        l3_per_core = next(c for c in per_core.caches if c.name == "L3")
        l3_full = next(c for c in full.caches if c.name == "L3")
        assert l3_per_core.capacity < l3_full.capacity


class TestTrace:
    def test_trace_covers_all_io_tensors(self):
        chain = gemm_chain(16, 16, 16, 16)
        program = lower_schedule(
            chain, ("m", "l", "k", "n"), {"m": 8, "l": 8, "k": 8, "n": 8}
        )
        tensors = {a.tensor for a in trace_program(program)}
        assert tensors == {"A", "B", "C", "D", "E"}

    def test_writes_flagged(self):
        chain = gemm_chain(16, 16, 16, 16)
        program = lower_schedule(
            chain, ("m", "l", "k", "n"), {"m": 8, "l": 8, "k": 8, "n": 8}
        )
        writes = {a.tensor for a in trace_program(program) if a.write}
        assert writes == {"C", "E"}

    def test_region_bytes_positive(self):
        chain = gemm_chain(10, 10, 10, 10)
        program = lower_schedule(
            chain, ("m", "l", "k", "n"), {"m": 4, "l": 4, "k": 4, "n": 4}
        )
        assert all(a.nbytes > 0 for a in trace_program(program))


class TestProfiler:
    def test_fused_beats_unfused_on_memory_bound_chain(self):
        hw = xeon_gold_6240()
        chain = batch_gemm_chain(8, 512, 64, 64, 512)
        decision = decide_fusion(chain, hw)
        fused = simulate_plan(decision.fused_plan)
        unfused = simulate_sequence(decision.unfused_plans, name="unfused")
        assert fused.time < unfused.time
        assert fused.dram_traffic < unfused.dram_traffic

    def test_report_fields(self):
        hw = xeon_gold_6240()
        chain = gemm_chain(64, 64, 64, 64)
        from repro.core.optimizer import ChimeraOptimizer

        plan = ChimeraOptimizer(hw).optimize(chain)
        report = simulate_plan(plan)
        assert report.blocks > 0
        assert report.launches == 1
        assert set(report.boundary_traffic) == {"L1", "L2", "L3"}
        assert report.time > 0
        assert "L3" in report.describe()

    def test_launch_overhead_factor(self):
        hw = xeon_gold_6240()
        chain = gemm_chain(64, 64, 64, 64)
        from repro.core.optimizer import ChimeraOptimizer

        plan = ChimeraOptimizer(hw).optimize(chain)
        cheap = simulate_sequence([plan], name="x", launch_overhead_factor=1.0)
        costly = simulate_sequence([plan], name="y", launch_overhead_factor=10.0)
        assert costly.time > cheap.time

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            simulate_sequence([], name="empty")


class TestTiming:
    def test_roofline_max_of_compute_and_movement(self):
        hw = xeon_gold_6240()
        traffic = {"L1": 0.0, "L2": 0.0, "L3": 131e9}  # 1 second of DRAM
        t = roofline_time(hw, flops=1.0, efficiency=1.0,
                          boundary_traffic=traffic, launches=0)
        assert t == pytest.approx(1.0)

    def test_movement_times_use_boundary_bandwidth(self):
        hw = xeon_gold_6240()
        times = movement_times(hw, {"L1": 1e9, "L2": 0.0, "L3": 131e9})
        assert times["L3"] == pytest.approx(1.0)
        assert times["L1"] == pytest.approx(1e9 / hw.level("L2").bandwidth)
