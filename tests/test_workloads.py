"""Tests for the evaluation workloads (Tables I, IV, V; networks)."""

import pytest

from repro.hardware import a100, xeon_gold_6240
from repro.ir.graph import partition_graph
from repro.workloads import (
    NETWORKS,
    NetworkConfig,
    TABLE_IV,
    TABLE_V,
    all_conv_chains,
    all_gemm_chains,
    build_multibranch_network,
    build_network,
    conv_chain_config,
    gemm_chain_config,
    is_fusable_chain,
    model_breakdown,
    network_config,
    network_time,
    pack_networks,
)


class TestTableIV:
    def test_twelve_configs(self):
        assert len(TABLE_IV) == 12
        assert [c.name for c in TABLE_IV[:3]] == ["G1", "G2", "G3"]

    def test_g1_row(self):
        g1 = gemm_chain_config("G1")
        assert (g1.batch, g1.m, g1.n, g1.k, g1.l) == (8, 512, 64, 64, 512)
        assert g1.network == "Bert-Small"

    def test_mlp_mixer_batch_one(self):
        assert gemm_chain_config("G10").batch == 1

    def test_build_shapes(self):
        chain = gemm_chain_config("G6").build()
        extents = chain.loop_extents()
        assert extents == {"b": 16, "m": 256, "n": 80, "k": 80, "l": 256}

    def test_build_with_softmax(self):
        chain = gemm_chain_config("G1").build(with_softmax=True)
        assert any(op.tag == "softmax" for op in chain.ops)
        assert chain.name == "G1+softmax"

    def test_batch_override_for_npu(self):
        chain = gemm_chain_config("G3").build(batch_override=1)
        assert chain.loop_extents()["b"] == 1

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="G1"):
            gemm_chain_config("G13")

    def test_all_gemm_chains(self):
        chains = all_gemm_chains()
        assert len(chains) == 12
        assert chains[0].name == "G1"


class TestTableV:
    def test_eight_configs(self):
        assert len(TABLE_V) == 8

    def test_c1_row(self):
        c1 = conv_chain_config("C1")
        assert (c1.ic, c1.h, c1.w) == (64, 112, 112)
        assert (c1.oc1, c1.oc2) == (192, 128)
        assert (c1.st1, c1.k1, c1.k2) == (2, 3, 1)

    def test_c6_is_the_compute_bound_case(self):
        c6 = conv_chain_config("C6")
        assert c6.k1 == 1 and c6.k2 == 3  # pointwise then 3x3

    def test_build(self):
        chain = conv_chain_config("C7").build()
        assert chain.name == "C7"
        assert len(chain.compute_intensive_ops()) == 2

    def test_build_with_relu(self):
        chain = conv_chain_config("C3").build(with_relu=True)
        assert chain.name == "C3+relu"
        assert len(chain.ops) == 4

    def test_all_conv_chains(self):
        assert len(all_conv_chains()) == 8

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            conv_chain_config("C9")


class TestNetworks:
    def test_presets_exist(self):
        assert "Bert-Base" in NETWORKS and "TF-Large" in NETWORKS
        with pytest.raises(KeyError):
            network_config("GPT-3")

    def test_bert_base_hidden(self):
        config = network_config("Bert-Base")
        assert config.hidden == 768

    def test_build_network_structure(self):
        dag = build_network(network_config("Bert-Small"))
        names = [n.name for n in dag.nodes]
        assert any("attention" in n for n in names)
        assert "ffn1" in names and "ln2" in names
        assert all(n.repeat == 4 for n in dag.nodes)

    def test_fusable_chains_come_from_stitching(self):
        # The attention block is built from single-op graph nodes, so no
        # raw node is a fusable chain on its own; the stitched partition
        # reassembles attention (and the other glue runs) into chains.
        dag = build_network(network_config("Bert-Small"))
        assert not any(is_fusable_chain(n) for n in dag.nodes)
        partition = partition_graph(dag, stitch=True)
        chain_names = [n.name for n in partition.chains]
        assert any("attention" in name for name in chain_names)

    def test_network_flops_scale_with_layers(self):
        small = build_network(network_config("Bert-Small"))
        large = build_network(network_config("Bert-Large"))
        assert large.total_flops() > small.total_flops()

    def test_lookup_is_case_insensitive(self):
        assert network_config("bert-base") is network_config("Bert-Base")
        assert network_config("VIT-BASE/14").name == "ViT-Base/14"

    def test_unknown_lookup_lists_known_names(self):
        with pytest.raises(KeyError, match="Bert-Base"):
            network_config("GPT-3")


class TestDegenerateConfigs:
    """Regression: degenerate-but-legal hyperparameters must build and
    time cleanly, while non-positive ones must fail naming the field."""

    DEGENERATE = [
        NetworkConfig("one-layer", layers=1, heads=8, seq=64, head_dim=64),
        NetworkConfig("one-head", layers=2, heads=1, seq=64, head_dim=64),
        NetworkConfig("short-seq", layers=2, heads=4, seq=16, head_dim=64),
        NetworkConfig("minimal", layers=1, heads=1, seq=1, head_dim=1,
                      ffn_mult=1),
    ]

    @pytest.mark.parametrize(
        "config", DEGENERATE, ids=lambda c: c.name
    )
    def test_degenerate_configs_time_positive(self, config):
        dag = build_network(config)
        assert dag.total_flops() > 0
        timing = network_time(
            dag, xeon_gold_6240(), base_system="relay",
            chain_system="ansor",
        )
        partition = partition_graph(dag)
        assert set(timing.node_times) == {
            n.name for n in partition.all_nodes()
        }
        for name, value in timing.node_times.items():
            assert value > 0, f"node {name} timed at {value}"
        assert timing.total > 0

    @pytest.mark.parametrize(
        "field", ["layers", "heads", "seq", "head_dim", "ffn_mult"]
    )
    @pytest.mark.parametrize("value", [0, -3])
    def test_non_positive_fields_rejected(self, field, value):
        kwargs = dict(layers=2, heads=2, seq=32, head_dim=16, ffn_mult=2)
        kwargs[field] = value
        with pytest.raises(ValueError, match=field):
            NetworkConfig("bad", **kwargs)

    def test_chain_times_must_cover_fusable_nodes(self):
        dag = build_network(self.DEGENERATE[0])
        with pytest.raises(ValueError, match="chain_times misses"):
            network_time(
                dag, xeon_gold_6240(), base_system="relay",
                chain_times={}, partition=partition_graph(dag, stitch=True),
            )

    def test_exactly_one_chain_source_required(self):
        dag = build_network(self.DEGENERATE[0])
        with pytest.raises(ValueError, match="exactly one"):
            network_time(dag, xeon_gold_6240(), base_system="relay")
        with pytest.raises(ValueError, match="exactly one"):
            network_time(
                dag, xeon_gold_6240(), base_system="relay",
                chain_system="ansor", chain_times={},
            )


class TestPackedNetworks:
    """Edge cases of multi-tenant packing and the synthetic wide graph."""

    def test_pack_single_network(self):
        bert = build_network(network_config("Bert-Small"))
        packed = pack_networks([bert])
        assert packed.name == bert.name
        assert len(packed.nodes) == len(bert.nodes)
        assert all(n.name.startswith("t0.") for n in packed.nodes)
        # Deps are rewritten into the tenant namespace, structure intact.
        assert [n.name for n in packed.nodes] == [
            "t0." + n.name for n in bert.nodes
        ]
        partition_graph(packed)  # must still validate

    def test_pack_empty_list_raises(self):
        with pytest.raises(ValueError, match="at least one network"):
            pack_networks([])

    def test_pack_concatenated_order(self):
        bert = build_network(network_config("Bert-Small"))
        packed = pack_networks([bert] * 2, interleave=False)
        names = [n.name for n in packed.nodes]
        # Tenant 0's nodes all precede tenant 1's.
        boundary = names.index("t1." + bert.nodes[0].name)
        assert all(n.startswith("t0.") for n in names[:boundary])
        assert all(n.startswith("t1.") for n in names[boundary:])

    def test_pack_mixed_network_families(self):
        bert = build_network(network_config("Bert-Small"))
        wide = build_multibranch_network(
            branches=2, seq=32, width=64, reduce_dim=16
        )
        packed = pack_networks([bert, wide], name="mixed")
        assert packed.name == "mixed"
        assert len(packed.nodes) == len(bert.nodes) + len(wide.nodes)
        partition_graph(packed)

    @pytest.mark.parametrize("branches", [0, -2])
    def test_multibranch_rejects_non_positive_branches(self, branches):
        with pytest.raises(ValueError, match="branches"):
            build_multibranch_network(branches=branches)

    def test_multibranch_single_branch(self):
        dag = build_multibranch_network(
            branches=1, seq=32, width=64, reduce_dim=16
        )
        # stem + expand + reduce + head, no fan-out to schedule around.
        assert len(dag.nodes) == 4
        assert dag.total_flops() > 0

    def test_packed_network_compiles_on_mismatched_hardware(self):
        """The same packed graph must compile per machine model.

        A multi-tenant DAG is hardware-agnostic; compiling it on two
        different presets (single-core CPU vs. a link-bearing NPU) must
        stamp each plan with its own hardware and never leak plans
        across machines.
        """
        from repro.hardware import mesh_npu_16
        from repro.runtime.network import compile_network

        wide = build_multibranch_network(
            branches=2, seq=32, width=64, reduce_dim=16
        )
        packed = pack_networks([wide] * 2, name="wide-x2")
        cpu_plan = compile_network(packed, xeon_gold_6240())
        npu_plan = compile_network(packed, mesh_npu_16())
        assert cpu_plan.hardware.name == "xeon-gold-6240"
        assert npu_plan.hardware.name == "mesh-npu-16"
        assert {n.name for n in cpu_plan.nodes} == {
            n.name for n in npu_plan.nodes
        }
        # The linkless CPU preset can never produce a partitioned plan.
        assert all(n.cores == 1 for n in cpu_plan.nodes)


class TestNetworkTiming:
    @pytest.mark.slow
    def test_chimera_chain_speeds_up_network(self):
        config = network_config("Bert-Small")
        dag = build_network(config)
        hw = a100()
        with_chimera = network_time(
            dag, hw, base_system="relay", chain_system="chimera"
        )
        with_cudnn = network_time(
            dag, hw, base_system="relay", chain_system="cudnn"
        )
        assert with_chimera.total < with_cudnn.total
        partition = partition_graph(dag)
        assert set(with_chimera.node_times) == {
            n.name for n in partition.all_nodes()
        }


class TestBreakdown:
    @pytest.mark.slow
    def test_table_i_shape(self):
        hw = a100()
        breakdown = model_breakdown(network_config("Bert-Small"), hw)
        total = (
            breakdown.mi_fraction
            + breakdown.ci_fraction
            + breakdown.bmm_fraction
        )
        assert total == pytest.approx(1.0)
        # The paper's motivating observation: attention BMMs take a
        # substantial share (Table I: 26.65%-40.04%).
        assert breakdown.bmm_fraction > 0.10
        assert breakdown.ci_fraction > breakdown.mi_fraction
