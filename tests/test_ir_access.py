"""Tests for affine expressions and tensor accesses."""

import pytest

from repro.ir.access import AffineExpr, TensorAccess, union_loops


class TestAffineExpr:
    def test_var(self):
        expr = AffineExpr.var("m")
        assert expr.loops == ("m",)
        assert expr.coeff("m") == 1
        assert expr.coeff("n") == 0

    def test_merge_duplicates(self):
        expr = AffineExpr.of(("m", 1), ("m", 2))
        assert expr.coeff("m") == 3

    def test_zero_coeff_dropped(self):
        expr = AffineExpr.of(("m", 0), ("n", 1))
        assert expr.loops == ("n",)

    def test_negative_coeff_rejected(self):
        with pytest.raises(ValueError):
            AffineExpr.of(("m", -1))

    def test_scaled(self):
        expr = AffineExpr.of(("oh", 2), ("kh", 1), offset=1).scaled(3)
        assert expr.coeff("oh") == 6
        assert expr.coeff("kh") == 3
        assert expr.offset == 3

    def test_substituted_composes_strides(self):
        # oh1 -> oh2*st2 + kh2 inside oh1*st1 + kh1
        inner = AffineExpr.of(("oh1", 2), ("kh1", 1))
        sub = {"oh1": AffineExpr.of(("oh2", 2), ("kh2", 1))}
        composed = inner.substituted(sub)
        assert composed.coeff("oh2") == 4
        assert composed.coeff("kh2") == 2
        assert composed.coeff("kh1") == 1

    def test_footprint_plain(self):
        expr = AffineExpr.var("m")
        assert expr.footprint({"m": 16}) == 16

    def test_footprint_halo(self):
        # (T_oh - 1) * stride + (T_kh - 1) + 1 for oh*2 + kh
        expr = AffineExpr.of(("oh", 2), ("kh", 1))
        assert expr.footprint({"oh": 4, "kh": 3}) == (4 - 1) * 2 + (3 - 1) + 1

    def test_footprint_missing_loop_is_one_iteration(self):
        expr = AffineExpr.of(("oh", 2), ("kh", 1))
        assert expr.footprint({"oh": 4}) == (4 - 1) * 2 + 1

    def test_extent(self):
        expr = AffineExpr.of(("oh", 2), ("kh", 1))
        assert expr.extent({"oh": 10, "kh": 3}) == (10 - 1) * 2 + (3 - 1) + 1

    def test_evaluate(self):
        expr = AffineExpr.of(("a", 2), ("b", 3), offset=1)
        assert expr.evaluate({"a": 5, "b": 2}) == 2 * 5 + 3 * 2 + 1

    def test_str(self):
        assert str(AffineExpr.of(("oh", 2), ("kh", 1))) == "kh + 2*oh"


class TestTensorAccess:
    def test_simple(self):
        access = TensorAccess.simple("A", ("m", "k"))
        assert access.loops == ("k", "m")
        assert access.uses("m") and access.uses("k")
        assert not access.uses("n")

    def test_footprint_product(self):
        access = TensorAccess.simple("A", ("m", "k"))
        assert access.footprint({"m": 8, "k": 4}) == 32

    def test_region_clamps_to_shape(self):
        access = TensorAccess.simple("A", ("m", "k"))
        region = access.region({"m": 3, "k": 0}, {"m": 10, "k": 64}, (32, 64))
        assert region == ((30, 32), (0, 64))

    def test_region_from_ranges(self):
        access = TensorAccess(
            "X", (AffineExpr.of(("oh", 2), ("kh", 1)),)
        )
        region = access.region_from_ranges({"oh": (3, 5), "kh": (0, 3)}, (100,))
        # lo = 3*2 + 0, hi = 4*2 + 2 + 1
        assert region == ((6, 11),)

    def test_region_from_ranges_missing_loop(self):
        access = TensorAccess.simple("A", ("m",))
        assert access.region_from_ranges({}, (8,)) == ((0, 1),)

    def test_union_loops(self):
        a = TensorAccess.simple("A", ("m", "k"))
        b = TensorAccess.simple("B", ("k", "n"))
        assert union_loops([a, b]) == ("k", "m", "n")
