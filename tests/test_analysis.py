"""Tests for validation, reporting, comparison, and ablation."""

import pytest

from repro.analysis import (
    TABLE_II,
    geomean,
    render_series,
    render_table,
    render_table_ii,
    validate_model,
)
from repro.hardware import xeon_gold_6240
from repro.ir.chains import batch_gemm_chain, gemm_chain
from repro.runtime import ablation_study, compare
from repro.runtime.ablation import VARIANTS


@pytest.fixture(scope="module")
def cpu():
    return xeon_gold_6240()


class TestValidation:
    @pytest.mark.slow
    def test_high_r_squared_with_reuse(self, cpu):
        chain = gemm_chain(512, 512, 512, 512)
        result = validate_model(
            chain, cpu, ("m", "l", "k", "n"), samples=25, seed=3
        )
        assert len(result.points) >= 20
        assert result.r_squared > 0.95
        assert result.mean_relative_error < 0.10

    @pytest.mark.slow
    def test_no_reuse_variant_moves_more(self, cpu):
        chain = gemm_chain(512, 512, 512, 512)
        with_reuse = validate_model(
            chain, cpu, ("m", "l", "k", "n"), samples=20, seed=3
        )
        without = validate_model(
            chain, cpu, ("m", "l", "k", "n"), samples=20, seed=3,
            reuse_intermediates=False,
        )
        assert without.r_squared > 0.95
        assert (
            without.best_measured().measured
            > with_reuse.best_measured().measured
        )

    @pytest.mark.slow
    def test_predicted_optimum_near_measured_optimum(self, cpu):
        chain = gemm_chain(512, 512, 512, 512)
        result = validate_model(
            chain, cpu, ("m", "l", "k", "n"), samples=30, seed=1
        )
        best_pred = result.best_predicted()
        best_meas = result.best_measured()
        assert best_pred.measured <= best_meas.measured * 1.1

    def test_r_squared_degenerate_cases(self):
        from repro.analysis.validation import ValidationPoint, ValidationResult

        empty = ValidationResult("x", ("m",), "L1", ())
        assert empty.r_squared == 0.0
        flat = ValidationResult(
            "x", ("m",), "L1",
            tuple(ValidationPoint({}, 1.0, float(i)) for i in range(3)),
        )
        assert flat.r_squared == 0.0  # zero predictor variance


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_render_series(self):
        text = render_series({"x": [1.0, 2.5]})
        assert text == "x: 1.00 2.50"

    def test_table_ii_rows(self):
        names = [row["name"] for row in TABLE_II]
        assert names[-1] == "Chimera"
        assert "BOLT" in names and "Ansor" in names
        text = render_table_ii()
        assert "Replaceable Micro Kernel" in text
        assert "Minimize Data Movement" in text

    def test_chimera_only_system_supporting_all_backends(self):
        full_support = [
            row["name"]
            for row in TABLE_II
            if (row["cpu"], row["gpu"], row["npu"]) == ("Yes", "Yes", "Yes")
            and row["codegen"] == "Yes"
            and "Micro Kernel" in row["intra"]
        ]
        assert full_support == ["Chimera"]

    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, -2.0])


class TestComparison:
    @pytest.mark.slow
    def test_compare_structure(self, cpu):
        chains = [batch_gemm_chain(2, 128, 64, 64, 128)]
        comp = compare(
            chains, cpu, ("relay", "chimera"), workload_names=["W"]
        )
        assert comp.systems == ("Relay", "Chimera")
        row = comp.rows[0]
        assert row.workload == "W"
        normalized = row.normalized("Relay")
        assert normalized["Relay"] == pytest.approx(1.0)
        assert comp.geomean_speedup("Chimera", "Relay") == pytest.approx(
            row.speedup("Chimera", "Relay")
        )
        assert "Chimera" in comp.table("Relay")

    def test_no_systems_raises(self, cpu):
        with pytest.raises(ValueError):
            compare([gemm_chain(8, 8, 8, 8)], cpu, ("tensorrt",))


class TestAblation:
    def test_variant_definitions(self):
        names = [v.name for v in VARIANTS]
        assert names == ["baseline", "v-C", "v-F", "v-M", "Chimera"]
        full = VARIANTS[-1]
        assert full.cost_model and full.fusion and full.micro_kernel

    @pytest.mark.slow
    def test_all_components_on_wins(self, cpu):
        chain = batch_gemm_chain(8, 512, 64, 64, 512)
        times = ablation_study(chain, cpu)
        assert set(times) == {"baseline", "v-C", "v-F", "v-M", "Chimera"}
        assert times["Chimera"] <= min(
            times["baseline"], times["v-C"], times["v-F"], times["v-M"]
        )
