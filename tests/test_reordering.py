"""Tests for block order enumeration."""

import pytest

from repro.core.reordering import (
    candidate_models,
    chain_reduction_loops,
    constrained_count,
    count_orders,
    enumerate_orders,
    loop_classes,
    ordering_loops,
)
from repro.ir.chains import batch_gemm_chain, conv_chain, gemm_chain


class TestOrderingLoops:
    def test_degenerate_loops_dropped(self):
        chain = batch_gemm_chain(1, 16, 16, 16, 16)
        assert "b" not in ordering_loops(chain)

    def test_all_loops_kept_when_nondegenerate(self):
        chain = gemm_chain(8, 8, 8, 8)
        assert set(ordering_loops(chain)) == {"m", "n", "k", "l"}


class TestLoopClasses:
    def test_gemm_chain_has_four_singleton_classes(self):
        chain = gemm_chain(2048, 2048, 2048, 2048)
        classes = loop_classes(chain)
        assert sorted(len(c) for c in classes) == [1, 1, 1, 1]

    def test_conv_chain_groups_symmetric_spatials(self):
        chain = conv_chain(1, 64, 56, 56, 64, 64, 1, 1, 3, 3)
        classes = {frozenset(c) for c in loop_classes(chain)}
        assert frozenset({"oh", "ow"}) in classes
        assert frozenset({"rh1", "rw1"}) in classes
        assert frozenset({"rh2", "rw2"}) in classes

    def test_different_extents_not_grouped(self):
        # oh=56 vs ow=28: asymmetric spatial dims stay separate.
        chain = conv_chain(1, 8, 56, 28, 16, 16, 1, 1, 3, 3)
        classes = {frozenset(c) for c in loop_classes(chain)}
        assert frozenset({"oh", "ow"}) not in classes


class TestEnumeration:
    def test_gemm_chain_has_24_orders(self):
        # Section IV-B: four independent loops -> 4! = 24, not 720.
        chain = gemm_chain(2048, 2048, 2048, 2048)
        assert count_orders(chain) == 24
        assert len(list(enumerate_orders(chain))) == 24

    def test_canonical_count_matches_enumeration(self):
        chain = conv_chain(1, 64, 56, 56, 64, 64, 1, 1, 1, 3)
        orders = list(enumerate_orders(chain))
        assert len(orders) == count_orders(chain)
        assert len(set(orders)) == len(orders)

    def test_max_orders_samples_deterministically(self):
        chain = conv_chain(1, 64, 56, 56, 64, 64, 1, 1, 3, 3)
        sample_a = list(enumerate_orders(chain, max_orders=50))
        sample_b = list(enumerate_orders(chain, max_orders=50))
        assert sample_a == sample_b
        assert len(sample_a) == 50

    def test_prefix_constraint(self):
        chain = gemm_chain(64, 64, 64, 64)
        orders = list(enumerate_orders(chain, prefix=frozenset({"m", "l"})))
        assert orders
        for order in orders:
            assert set(order[:2]) == {"m", "l"}

    def test_prefix_reduces_space(self):
        chain = gemm_chain(64, 64, 64, 64)
        constrained = list(enumerate_orders(chain, prefix=frozenset({"m", "l"})))
        assert len(constrained) == 4  # 2! prefix x 2! tail


class TestCandidateModels:
    def test_signatures_deduplicate(self):
        chain = gemm_chain(2048, 2048, 2048, 2048)
        space = candidate_models(chain)
        assert space.enumerated == 24
        assert len(space.models) < 24
        assert not space.truncated

    def test_truncation_flag(self):
        chain = conv_chain(1, 64, 56, 56, 64, 64, 1, 1, 3, 3)
        space = candidate_models(chain, max_orders=20)
        assert space.truncated

    def test_exact_cap_is_not_truncated(self):
        """max_orders == count_orders drops nothing and must say so."""
        chain = gemm_chain(2048, 2048, 2048, 2048)
        space = candidate_models(chain, max_orders=count_orders(chain))
        assert space.enumerated == count_orders(chain)
        assert not space.truncated

    def test_one_below_cap_is_truncated(self):
        chain = gemm_chain(2048, 2048, 2048, 2048)
        space = candidate_models(chain, max_orders=count_orders(chain) - 1)
        assert space.enumerated == count_orders(chain) - 1
        assert space.truncated

    def test_prefix_space_complete_scan_not_truncated(self):
        """A fully enumerated prefix-constrained space must compare against
        the constrained count, not the whole space's."""
        chain = gemm_chain(64, 64, 64, 64)
        prefix = frozenset({"m", "l"})
        space = candidate_models(chain, max_orders=200_000, prefix=prefix)
        assert space.total == constrained_count(chain, prefix) == 4
        assert space.enumerated == 4
        assert not space.truncated

    def test_prefix_space_cap_boundary(self):
        chain = gemm_chain(64, 64, 64, 64)
        prefix = frozenset({"m", "l"})
        exact = candidate_models(
            chain, max_orders=constrained_count(chain, prefix), prefix=prefix
        )
        assert not exact.truncated
        clipped = candidate_models(chain, max_orders=3, prefix=prefix)
        assert clipped.truncated

    def test_constrained_count_no_prefix_matches_count_orders(self):
        chain = conv_chain(1, 64, 56, 56, 64, 64, 1, 1, 3, 3)
        assert constrained_count(chain) == count_orders(chain)

    def test_no_reuse_flag_propagates(self):
        chain = gemm_chain(64, 64, 64, 64)
        space = candidate_models(chain, reuse_intermediates=False)
        assert all(not m.reuse_intermediates for m in space.models)


class TestChainReductionLoops:
    def test_gemm_chain(self):
        chain = gemm_chain(8, 8, 8, 8)
        assert set(chain_reduction_loops(chain)) == {"k", "l"}

    def test_conv_chain(self):
        chain = conv_chain(1, 8, 16, 16, 8, 8, 1, 1, 3, 3)
        reductions = set(chain_reduction_loops(chain))
        assert {"ic", "rh1", "rw1", "oc1", "rh2", "rw2"} == reductions
