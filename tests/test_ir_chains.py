"""Tests for chain construction, fusion and queries."""

import pytest

from repro.ir.chain import OperatorChain, single_op_chain
from repro.ir.chains import (
    attention_chain,
    batch_gemm_chain,
    conv_chain,
    fuse_sequence,
    gemm_chain,
    rename_chain_loops,
)
from repro.ir import builders


class TestGemmChain:
    def test_independent_loops(self):
        chain = gemm_chain(32, 16, 8, 24)
        assert set(chain.independent_loops()) == {"m", "n", "k", "l"}

    def test_io_and_intermediate(self):
        chain = gemm_chain(32, 16, 8, 24)
        assert chain.io_tensors() == ("A", "B", "D", "E")
        assert chain.intermediate_tensors() == ("C",)
        assert chain.input_tensors() == ("A", "B", "D")
        assert chain.output_tensors() == ("E",)

    def test_private_loops(self):
        chain = gemm_chain(32, 16, 8, 24)
        assert chain.private_loops(chain.op("gemm1")) == ("k",)
        assert chain.private_loops(chain.op("gemm2")) == ("n",)

    def test_loop_extents(self):
        chain = gemm_chain(32, 16, 8, 24)
        assert chain.loop_extents() == {"m": 32, "n": 16, "k": 8, "l": 24}

    def test_total_flops(self):
        chain = gemm_chain(32, 16, 8, 24)
        assert chain.total_flops() == 2 * 32 * 8 * 24 + 2 * 32 * 24 * 16

    def test_arithmetic_intensity_positive(self):
        chain = gemm_chain(32, 16, 8, 24)
        assert chain.arithmetic_intensity() > 0


class TestBatchGemmChain:
    def test_loops(self):
        chain = batch_gemm_chain(2, 32, 16, 8, 24)
        assert set(chain.independent_loops()) == {"b", "m", "n", "k", "l"}

    def test_softmax_in_the_middle(self):
        chain = batch_gemm_chain(2, 32, 16, 8, 24, with_softmax=True)
        tags = [op.tag for op in chain.ops]
        assert tags == ["batch_gemm", "softmax", "batch_gemm"]
        assert set(chain.intermediate_tensors()) == {"C", "S"}
        assert chain.io_tensors() == ("A", "B", "D", "E")

    def test_attention_chain_shapes(self):
        chain = attention_chain(4, 128, 64)
        extents = chain.loop_extents()
        assert extents["m"] == 128 and extents["l"] == 128
        assert extents["n"] == 64 and extents["k"] == 64


class TestConvChain:
    def test_ten_independent_loops(self):
        chain = conv_chain(2, 8, 16, 16, 12, 10, 2, 1, 3, 3)
        assert len(chain.independent_loops()) == 10

    def test_halo_in_producer_access(self):
        chain = conv_chain(1, 8, 16, 16, 12, 10, 2, 1, 3, 3)
        conv1 = chain.op("conv1")
        h_dim = conv1.access_of("X").dims[2]
        # (oh*st2 + rh2)*st1 + rh1 with st1=2, st2=1
        assert h_dim.coeff("oh") == 2
        assert h_dim.coeff("rh2") == 2
        assert h_dim.coeff("rh1") == 1

    def test_oc1_is_shared(self):
        chain = conv_chain(1, 8, 16, 16, 12, 10)
        owners = chain.ops_with_loop("oc1")
        assert {op.name for op in owners} == {"conv1", "conv2"}

    def test_with_relu_has_four_ops(self):
        chain = conv_chain(1, 8, 16, 16, 12, 10, with_relu=True)
        assert [op.tag for op in chain.ops] == [
            "conv2d", "relu", "conv2d", "relu",
        ]
        assert chain.output_tensors() == ("R2",)

    def test_conv1_private_reductions(self):
        chain = conv_chain(1, 8, 16, 16, 12, 10)
        assert set(chain.private_loops(chain.op("conv1"))) == {
            "ic", "rh1", "rw1",
        }


class TestFuseSequence:
    def test_non_chaining_stages_rejected(self):
        g1 = builders.gemm("g1", 4, 4, 4, out="X")
        g2 = builders.gemm("g2", 4, 4, 4)  # does not read X
        with pytest.raises(ValueError, match="must chain"):
            fuse_sequence("bad", [g1, g2])

    def test_conflicting_tensor_decls_rejected(self):
        g1 = builders.gemm("g1", 4, 4, 4, out="C")
        g2 = builders.gemm("g2", 8, 4, 4, lhs="C")  # C shape mismatch
        with pytest.raises(ValueError, match="different specs"):
            fuse_sequence("bad", [g1, g2])

    def test_single_stage(self):
        chain = fuse_sequence("solo", [builders.gemm("g", 4, 4, 4)])
        assert len(chain.ops) == 1


class TestRenameChainLoops:
    def test_collision_rejected(self):
        chain = gemm_chain(4, 4, 4, 4)
        with pytest.raises(ValueError, match="collide"):
            rename_chain_loops(chain, {"m": "x", "n": "x"})

    def test_shadowing_rejected(self):
        chain = gemm_chain(4, 4, 4, 4)
        with pytest.raises(ValueError, match="shadow"):
            rename_chain_loops(chain, {"m": "n"})


class TestChainValidation:
    def test_extent_mismatch_rejected(self):
        from repro.ir.loops import Loop
        from repro.ir.access import TensorAccess
        from repro.ir.operator import OperatorKind, OperatorSpec
        from repro.ir.tensor import TensorSpec

        op1 = OperatorSpec(
            "a", OperatorKind.COMPUTE_INTENSIVE, "gemm",
            (Loop("m", 4),), (), (TensorAccess.simple("T", ("m",)),), 1,
        )
        op2 = OperatorSpec(
            "b", OperatorKind.COMPUTE_INTENSIVE, "gemm",
            (Loop("m", 8),), (TensorAccess.simple("T", ("m",)),),
            (TensorAccess.simple("U", ("m",)),), 1,
        )
        with pytest.raises(ValueError, match="extent"):
            OperatorChain(
                "bad", (op1, op2),
                {"T": TensorSpec("T", (8,)), "U": TensorSpec("U", (8,))},
            )

    def test_single_op_chain(self):
        op, tensors = builders.gemm("g", 4, 4, 4)
        chain = single_op_chain(op, tensors)
        assert chain.io_tensors() == ("g.A", "g.B", "g.C")
        assert chain.intermediate_tensors() == ()

    def test_describe_mentions_all_ops(self):
        chain = batch_gemm_chain(2, 8, 8, 8, 8, with_softmax=True)
        text = chain.describe()
        assert "gemm1" in text and "softmax" in text and "gemm2" in text
