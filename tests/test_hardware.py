"""Tests for hardware machine models."""

import pytest

from repro.hardware import (
    HardwareSpec,
    InterCoreLink,
    MemoryLevel,
    a100,
    a100_nvlinked_sms,
    all_presets,
    ascend_910,
    ascend_910_cluster,
    mesh_npu_16,
    multicore_presets,
    preset,
    xeon_gold_6240,
)


class TestPresets:
    def test_table_i_peak_performance(self):
        assert xeon_gold_6240().peak_flops == 12e12
        assert a100().peak_flops == 312e12
        assert ascend_910().peak_flops == 320e12

    def test_table_i_dram_bandwidth(self):
        assert xeon_gold_6240().dram_bandwidth == 131e9
        assert a100().dram_bandwidth == 1555e9
        assert ascend_910().dram_bandwidth == 1200e9

    def test_table_i_machine_balance(self):
        # Flop/byte rows of Table I: 92, ~200, ~267.
        assert round(xeon_gold_6240().machine_balance) == 92
        assert round(a100().machine_balance) == 201
        assert round(ascend_910().machine_balance) == 267

    def test_backends(self):
        assert xeon_gold_6240().backend == "cpu"
        assert a100().backend == "gpu"
        assert ascend_910().backend == "npu"

    def test_preset_lookup(self):
        assert preset("a100").name == "a100"
        with pytest.raises(KeyError, match="a100"):
            preset("h100")

    def test_all_presets(self):
        names = {hw.name for hw in all_presets()}
        assert names == {"xeon-gold-6240", "a100", "ascend-910"}

    def test_npu_unified_buffer(self):
        assert ascend_910().unified_buffer == 256 * 1024
        assert a100().unified_buffer is None

    def test_software_managed_levels(self):
        assert a100().level("SMEM").software_managed
        assert not a100().level("L2").software_managed
        assert ascend_910().level("L0").software_managed
        assert not xeon_gold_6240().level("L2").software_managed


class TestHardwareSpec:
    def test_dram_is_unbounded_last(self):
        hw = xeon_gold_6240()
        assert hw.dram.is_unbounded
        assert hw.levels[-1] is hw.dram

    def test_per_block_capacity_shared_split(self):
        hw = xeon_gold_6240()
        l3 = hw.level("L3")
        assert hw.per_block_capacity(l3) == l3.capacity // hw.num_cores
        l2 = hw.level("L2")
        assert hw.per_block_capacity(l2) == l2.capacity

    def test_level_lookup_raises(self):
        with pytest.raises(KeyError):
            xeon_gold_6240().level("L4")
        with pytest.raises(KeyError):
            xeon_gold_6240().level_index("L9")

    def test_compute_time(self):
        hw = xeon_gold_6240()
        assert hw.compute_time(12e12) == pytest.approx(1.0)
        assert hw.compute_time(12e12, efficiency=0.5) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            hw.compute_time(1.0, efficiency=0.0)

    def test_validation_rejects_bounded_dram(self):
        with pytest.raises(ValueError, match="unbounded"):
            HardwareSpec(
                name="bad",
                backend="cpu",
                peak_flops=1e12,
                num_cores=1,
                levels=(
                    MemoryLevel("L1", 1024, 1e9),
                    MemoryLevel("DRAM", 1024, 1e9),
                ),
            )

    def test_validation_rejects_unbounded_onchip(self):
        with pytest.raises(ValueError, match="bounded"):
            HardwareSpec(
                name="bad",
                backend="cpu",
                peak_flops=1e12,
                num_cores=1,
                levels=(
                    MemoryLevel("L1", None, 1e9),
                    MemoryLevel("DRAM", None, 1e9),
                ),
            )

    def test_validation_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            HardwareSpec(
                name="bad",
                backend="tpu",
                peak_flops=1e12,
                num_cores=1,
                levels=(
                    MemoryLevel("L1", 1024, 1e9),
                    MemoryLevel("DRAM", None, 1e9),
                ),
            )

    def test_describe(self):
        text = xeon_gold_6240().describe()
        assert "L2" in text and "DRAM" in text

    def test_describe_is_complete(self):
        # Every declared unit must surface in the CLI hardware output.
        assert "vector unit" in xeon_gold_6240().describe()
        assert "matrix unit" in a100().describe()
        ascend = ascend_910().describe()
        assert "matrix unit" in ascend and "unified buffer" in ascend
        mesh = mesh_npu_16().describe()
        assert "inter-core link: mesh" in mesh
        assert "inter-core link" not in a100().describe()

    def test_per_block_capacity_partitions(self):
        hw = mesh_npu_16()
        sram = hw.level("SRAM")
        assert hw.per_block_capacity(sram) == sram.capacity // hw.num_cores
        assert hw.per_block_capacity(sram, 4) == sram.capacity // 4
        assert hw.per_block_capacity(sram, 1) == sram.capacity
        # Private and unbounded levels ignore the partition count.
        assert hw.per_block_capacity(hw.level("L0"), 4) == (
            hw.level("L0").capacity
        )
        assert hw.per_block_capacity(hw.dram, 4) is None
        with pytest.raises(ValueError, match="partitions"):
            hw.per_block_capacity(sram, 0)

    def test_per_block_capacity_degenerate_share_warns(self):
        hw = HardwareSpec(
            name="tiny",
            backend="cpu",
            peak_flops=1e12,
            num_cores=64,
            levels=(
                MemoryLevel("L1", 1024, 1e9),
                MemoryLevel("L2", 32, 1e9, shared=True),
                MemoryLevel("DRAM", None, 1e9),
            ),
        )
        with pytest.warns(UserWarning, match="no meaningful"):
            share = hw.per_block_capacity(hw.level("L2"))
        assert share == 1


class TestInterCoreLink:
    def test_validation(self):
        with pytest.raises(ValueError, match="bandwidth"):
            InterCoreLink(bandwidth=0, latency=1e-6)
        with pytest.raises(ValueError, match="latency"):
            InterCoreLink(bandwidth=1e9, latency=-1.0)
        with pytest.raises(ValueError, match="topology"):
            InterCoreLink(bandwidth=1e9, latency=0.0, topology="torus")
        with pytest.raises(ValueError, match="hop"):
            InterCoreLink(bandwidth=1e9, latency=0.0, per_hop_cost=-1.0)

    def test_collective_steps(self):
        ring = InterCoreLink(1e9, 1e-6, "ring")
        mesh = InterCoreLink(1e9, 1e-6, "mesh")
        direct = InterCoreLink(1e9, 1e-6, "all_to_all")
        assert ring.collective_steps(1) == 0
        assert ring.collective_steps(8) == 7
        assert mesh.collective_steps(16) == 6  # 2 * (4 - 1)
        assert mesh.collective_steps(9) == 4
        assert mesh.collective_steps(10) == 6  # side rounds up to 4
        assert direct.collective_steps(64) == 1

    def test_step_time_includes_hop_cost(self):
        link = InterCoreLink(1e9, 1e-6, per_hop_cost=0.5e-6)
        assert link.step_time() == pytest.approx(1.5e-6)

    def test_multicore_presets(self):
        names = [hw.name for hw in multicore_presets()]
        assert names == [
            "a100-nvlinked-sms", "ascend-910-cluster", "mesh-npu-16"
        ]
        for hw in multicore_presets():
            assert hw.link is not None
        # Gate-calibrated baselines stay linkless and unchanged.
        assert all(hw.link is None for hw in all_presets())

    def test_multicore_presets_extend_table_i(self):
        # The linked variants change only the name and the link.
        base = a100()
        linked = a100_nvlinked_sms()
        assert linked.levels == base.levels
        assert linked.peak_flops == base.peak_flops
        assert linked.link.topology == "all_to_all"
        assert ascend_910_cluster().link.topology == "ring"
        assert preset("mesh-npu-16").link.topology == "mesh"
