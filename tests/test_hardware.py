"""Tests for hardware machine models."""

import pytest

from repro.hardware import (
    HardwareSpec,
    MemoryLevel,
    a100,
    all_presets,
    ascend_910,
    preset,
    xeon_gold_6240,
)


class TestPresets:
    def test_table_i_peak_performance(self):
        assert xeon_gold_6240().peak_flops == 12e12
        assert a100().peak_flops == 312e12
        assert ascend_910().peak_flops == 320e12

    def test_table_i_dram_bandwidth(self):
        assert xeon_gold_6240().dram_bandwidth == 131e9
        assert a100().dram_bandwidth == 1555e9
        assert ascend_910().dram_bandwidth == 1200e9

    def test_table_i_machine_balance(self):
        # Flop/byte rows of Table I: 92, ~200, ~267.
        assert round(xeon_gold_6240().machine_balance) == 92
        assert round(a100().machine_balance) == 201
        assert round(ascend_910().machine_balance) == 267

    def test_backends(self):
        assert xeon_gold_6240().backend == "cpu"
        assert a100().backend == "gpu"
        assert ascend_910().backend == "npu"

    def test_preset_lookup(self):
        assert preset("a100").name == "a100"
        with pytest.raises(KeyError, match="a100"):
            preset("h100")

    def test_all_presets(self):
        names = {hw.name for hw in all_presets()}
        assert names == {"xeon-gold-6240", "a100", "ascend-910"}

    def test_npu_unified_buffer(self):
        assert ascend_910().unified_buffer == 256 * 1024
        assert a100().unified_buffer is None

    def test_software_managed_levels(self):
        assert a100().level("SMEM").software_managed
        assert not a100().level("L2").software_managed
        assert ascend_910().level("L0").software_managed
        assert not xeon_gold_6240().level("L2").software_managed


class TestHardwareSpec:
    def test_dram_is_unbounded_last(self):
        hw = xeon_gold_6240()
        assert hw.dram.is_unbounded
        assert hw.levels[-1] is hw.dram

    def test_per_block_capacity_shared_split(self):
        hw = xeon_gold_6240()
        l3 = hw.level("L3")
        assert hw.per_block_capacity(l3) == l3.capacity // hw.num_cores
        l2 = hw.level("L2")
        assert hw.per_block_capacity(l2) == l2.capacity

    def test_level_lookup_raises(self):
        with pytest.raises(KeyError):
            xeon_gold_6240().level("L4")
        with pytest.raises(KeyError):
            xeon_gold_6240().level_index("L9")

    def test_compute_time(self):
        hw = xeon_gold_6240()
        assert hw.compute_time(12e12) == pytest.approx(1.0)
        assert hw.compute_time(12e12, efficiency=0.5) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            hw.compute_time(1.0, efficiency=0.0)

    def test_validation_rejects_bounded_dram(self):
        with pytest.raises(ValueError, match="unbounded"):
            HardwareSpec(
                name="bad",
                backend="cpu",
                peak_flops=1e12,
                num_cores=1,
                levels=(
                    MemoryLevel("L1", 1024, 1e9),
                    MemoryLevel("DRAM", 1024, 1e9),
                ),
            )

    def test_validation_rejects_unbounded_onchip(self):
        with pytest.raises(ValueError, match="bounded"):
            HardwareSpec(
                name="bad",
                backend="cpu",
                peak_flops=1e12,
                num_cores=1,
                levels=(
                    MemoryLevel("L1", None, 1e9),
                    MemoryLevel("DRAM", None, 1e9),
                ),
            )

    def test_validation_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            HardwareSpec(
                name="bad",
                backend="tpu",
                peak_flops=1e12,
                num_cores=1,
                levels=(
                    MemoryLevel("L1", 1024, 1e9),
                    MemoryLevel("DRAM", None, 1e9),
                ),
            )

    def test_describe(self):
        text = xeon_gold_6240().describe()
        assert "L2" in text and "DRAM" in text
