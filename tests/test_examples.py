"""Smoke tests: the shipped examples must run end to end."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _run(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, capsys):
        out = _run("quickstart.py", capsys)
        assert "numerical check" in out
        assert "generated kernel" in out

    def test_plan_caching(self, capsys):
        out = _run("plan_caching.py", capsys)
        assert "optimizer skipped" in out  # service warm path
        assert "fully self-contained" in out  # raw save/load path

    def test_attention_fusion(self, capsys):
        out = _run("attention_fusion.py", capsys)
        assert "fused softmax numerics: OK" in out
        assert "Chimera" in out

    def test_multi_backend(self, capsys):
        out = _run("multi_backend.py", capsys)
        for kernel in ("avx512-outer-product", "tensorcore-wmma-2x2",
                       "cube-mad"):
            assert kernel in out

    def test_model_validation(self, capsys):
        out = _run("model_validation.py", capsys)
        assert "R^2" in out

    def test_conv_chain_fusion(self, capsys):
        out = _run("conv_chain_fusion.py", capsys)
        assert "halo recomputation factor" in out

    def test_network_compilation(self, capsys):
        out = _run("network_compilation.py", capsys)
        assert "cold network compile" in out
        assert "byte-identical" in out
        assert "plan-backed chains" in out

    def test_serving_client(self, capsys):
        out = _run("serving_client.py", capsys)
        assert "warm hit over the wire" in out
        assert "decoded locally" in out
        assert "pipelined 64 batch-tier requests" in out
        assert "GET /healthz -> 200" in out
        assert "drained: metrics checkpointed" in out
        assert "first request after restart served from memory" in out
