"""Tests for the constrained tile-size solver."""

import math

import pytest

from repro.core.movement import MovementModel
from repro.core.solver import gemm_chain_closed_form, solve_tiles
from repro.ir.chains import batch_gemm_chain, gemm_chain


@pytest.fixture
def chain():
    return gemm_chain(2048, 2048, 2048, 2048)


@pytest.fixture
def model(chain):
    return MovementModel(chain, ("m", "l", "k", "n"))


class TestClosedForm:
    def test_paper_solution(self):
        # T_M* = T_L* = -alpha + sqrt(alpha^2 + MC), T_N* = T_K* = alpha.
        mc = 1_000_000.0
        tiles = gemm_chain_closed_form(2048, 2048, 2048, 2048, mc, alpha=8)
        t = -8 + math.sqrt(64 + mc)
        assert tiles["m"] == pytest.approx(t)
        assert tiles["l"] == pytest.approx(t)
        assert tiles["n"] == 8 and tiles["k"] == 8

    def test_memory_exactly_consumed(self):
        mc = 500_000.0
        tiles = gemm_chain_closed_form(4096, 4096, 4096, 4096, mc, alpha=8)
        t, a = tiles["m"], tiles["n"]
        # GEMM1 usage: T_M*T_K + T_K*T_L + T_M*T_L = t^2 + 2*alpha*t = MC.
        assert t * t + 2 * a * t == pytest.approx(mc)

    def test_clipped_to_extents(self):
        tiles = gemm_chain_closed_form(64, 64, 64, 64, 1e9, alpha=8)
        assert tiles["m"] == 64 and tiles["l"] == 64

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            gemm_chain_closed_form(64, 64, 64, 64, 0)


class TestSolveTiles:
    def test_matches_closed_form(self, model):
        # The numeric solver's *continuous* optimum must match the
        # paper's Lagrange solution.  The reported integer tiles then
        # descend the exact-DV plateau to its canonical corner (same
        # ceil bucket, minimal MU), so they are compared via the DV they
        # achieve rather than by proximity to the continuous point.
        capacity = 1024 * 1024.0  # 1MB
        solution = solve_tiles(
            model, capacity, min_tiles={"m": 8, "n": 8, "k": 8, "l": 8}
        )
        closed = gemm_chain_closed_form(
            2048, 2048, 2048, 2048, capacity / 2, alpha=8
        )
        assert solution.feasible
        assert solution.continuous["m"] == pytest.approx(closed["m"], abs=2)
        assert solution.continuous["l"] == pytest.approx(closed["l"], abs=2)
        assert solution.tiles["n"] == 8 and solution.tiles["k"] == 8
        # Same ceil bucket as the closed-form point -> identical exact DV,
        # and the canonical corner never spends more memory than the
        # floored closed-form tiles would.
        floored = {
            name: max(1, int(value)) for name, value in closed.items()
        }
        assert solution.dv <= model.volume(floored, exact=True)
        assert solution.mu <= model.usage(floored)

    def test_respects_capacity(self, model):
        capacity = 200_000.0
        solution = solve_tiles(model, capacity)
        assert solution.mu <= capacity
        assert solution.feasible

    def test_respects_min_tiles(self, model):
        solution = solve_tiles(
            model, 1024 * 1024.0, min_tiles={"n": 32, "k": 16}
        )
        assert solution.tiles["n"] >= 32
        assert solution.tiles["k"] >= 16

    def test_respects_parent_bounds(self, model):
        parent = {"m": 100, "l": 100, "k": 2048, "n": 2048}
        solution = solve_tiles(model, 1024 * 1024.0, max_parent=parent)
        assert solution.tiles["m"] <= 100
        assert solution.tiles["l"] <= 100

    def test_parent_bound_wins_over_min_tile(self, model):
        solution = solve_tiles(
            model,
            1024 * 1024.0,
            min_tiles={"m": 64},
            max_parent={"m": 16, "l": 2048, "k": 2048, "n": 2048},
        )
        assert solution.tiles["m"] <= 16

    def test_quanta_snapping(self, model):
        solution = solve_tiles(
            model, 1024 * 1024.0, quanta={"m": 16, "l": 16}
        )
        assert solution.tiles["m"] % 16 == 0
        assert solution.tiles["l"] % 16 == 0

    def test_extra_constraint(self, model):
        limit = 5_000.0

        def c_tile_bound(tiles):
            return tiles["m"] * tiles["l"] * 2 - limit

        solution = solve_tiles(
            model, 1024 * 1024.0, constraints=[c_tile_bound]
        )
        assert solution.tiles["m"] * solution.tiles["l"] * 2 <= limit

    def test_infeasible_shrinks_to_ones(self):
        chain = gemm_chain(16, 16, 16, 16)
        model = MovementModel(chain, ("m", "l", "k", "n"))
        solution = solve_tiles(model, 64.0)  # absurdly small capacity
        assert solution.mu <= 64.0 or not solution.feasible

    def test_larger_capacity_never_hurts(self, model):
        small = solve_tiles(model, 128 * 1024.0)
        large = solve_tiles(model, 2 * 1024 * 1024.0)
        assert large.dv <= small.dv * 1.01

    def test_solution_dv_consistent_with_model(self, model):
        solution = solve_tiles(model, 512 * 1024.0)
        assert solution.dv == pytest.approx(
            model.volume(solution.tiles, exact=True)
        )

    def test_batch_chain_solvable(self):
        chain = batch_gemm_chain(8, 512, 64, 64, 512)
        model = MovementModel(chain, ("b", "m", "l", "k", "n"))
        solution = solve_tiles(model, 1024 * 1024.0)
        assert solution.feasible
        assert all(t >= 1 for t in solution.tiles.values())


class TestDegenerateExtents:
    """Micro-kernel requirements can exceed a small loop's extent; the whole
    loop is then the only sensible tile — never a tile above the extent and
    never an infeasibility verdict."""

    def test_quantum_above_extent_takes_whole_loop(self):
        # n extent 7 with a 16-wide tensor-core quantum: no aligned tile
        # exists below the extent.
        chain = gemm_chain(64, 7, 64, 64)
        model = MovementModel(chain, ("m", "l", "k", "n"))
        solution = solve_tiles(
            model, 1024 * 1024.0, quanta={"n": 16}, min_tiles={"n": 16}
        )
        assert solution.feasible
        assert solution.tiles["n"] == 7

    def test_min_tile_above_extent_clamps_to_extent(self):
        chain = gemm_chain(64, 64, 5, 64)
        model = MovementModel(chain, ("m", "l", "k", "n"))
        solution = solve_tiles(model, 1024 * 1024.0, min_tiles={"k": 16})
        assert solution.feasible
        assert solution.tiles["k"] == 5

    def test_no_candidate_exceeds_extent(self):
        extents = {"m": 64, "n": 7, "k": 5, "l": 3}
        chain = gemm_chain(extents["m"], extents["n"], extents["k"],
                           extents["l"])
        model = MovementModel(chain, ("m", "l", "k", "n"))
        solution = solve_tiles(
            model,
            1024 * 1024.0,
            quanta={"n": 16, "k": 8, "l": 4},
            min_tiles={"n": 16, "k": 8, "l": 4},
        )
        for name, tile in solution.tiles.items():
            assert 1 <= tile <= extents[name]

    def test_quantize_handles_inverted_range(self):
        from repro.core.solver import _quantize

        # lo > hi (quantum-aligned minimum above the extent): resolve to
        # the extent side instead of proposing an out-of-range tile.
        assert _quantize(20.0, 16, lo=16, hi=7) == 7
