"""Differential suite for memory-intensive op stitching (Section VI-B).

The partitioner folds elementwise/softmax/layer_norm glue into adjacent
compute-intensive chains so the bridge tensors become on-chip chain
intermediates.  This suite gates the feature three ways, per chain
family x hardware preset:

1. **Numerics** — the fused-with-stitching program must match the
   whole-operator numpy reference (``execute_reference``).
2. **Traffic** — simulated DRAM-boundary traffic of the stitched
   schedule must be strictly below the unstitched per-node schedules
   (the round trip of every bridge tensor disappears).
3. **Determinism** — plans must stay byte-identical across cold/warm
   service caches and across the scalar/tables movement-model engines.

It also fuzzes the stitching partitioner over random DAGs with
interleaved memory-intensive ops, pins the prologue regression
(an elementwise producer in front of a fusable chain must not drop
fusion), and checks the Bert-Base attention acceptance criterion.
"""

import random

import numpy as np
import pytest

from repro.codegen import execute_reference, random_inputs
from repro.codegen.executor import execute_program
from repro.codegen.program import lower_plan
from repro.hardware import ascend_910, xeon_gold_6240
from repro.ir import builders
from repro.ir.chains import gemm_chain
from repro.ir.graph import (
    ComputeDAG,
    GraphBuilder,
    partition_graph,
    stitching_enabled,
)
from repro.ir.stitch import StitchError, stitch_nodes
from repro.runtime.network import compile_network
from repro.runtime.serialization import network_plan_json
from repro.service import CompileService
from repro.sim.linecache import boundary_fill_traffic, measure_movement_lines
from repro.workloads import build_network, network_config


@pytest.fixture(scope="module", autouse=True)
def _force_stitching():
    """This suite tests the stitching feature itself: pin it on so the
    tier-1 run with ``REPRO_STITCH=0`` still exercises it (explicit
    ``stitch=False`` callers are unaffected — the kwarg wins)."""
    mp = pytest.MonkeyPatch()
    mp.setenv("REPRO_STITCH", "1")
    yield
    mp.undo()


# ----------------------------------------------------------------------
# Chain families: one small DAG per stitching role
# ----------------------------------------------------------------------
def _attention_dag() -> ComputeDAG:
    """batch_gemm -> softmax -> batch_gemm (the sandwich role)."""
    b = GraphBuilder("fam_attention")
    score = b.add_op(*builders.batch_gemm("score", 2, 16, 8, 16))
    sm = b.add_op(*builders.softmax("sm", (2, 16, 16)), deps=[score])
    b.add_op(*builders.batch_gemm("value", 2, 16, 16, 8), deps=[sm])
    return b.build()


def _epilogue_dag() -> ComputeDAG:
    """gemm -> layer_norm (the epilogue role, deferred normalization)."""
    b = GraphBuilder("fam_epilogue")
    g = b.add_op(*builders.gemm("proj", 16, 12, 8))
    b.add_op(*builders.layer_norm("ln", (16, 8)), deps=[g])
    return b.build()


def _prologue_dag() -> ComputeDAG:
    """gelu -> two-GEMM chain (the prologue role)."""
    b = GraphBuilder("fam_prologue")
    act = b.add_op(*builders.gelu("pre", (12, 10)))
    b.add_chain(gemm_chain(12, 8, 10, 9), deps=[act])
    return b.build()


def _sandwich_dag() -> ComputeDAG:
    """gemm -> gelu -> gemm -> layer_norm (every elementwise role)."""
    b = GraphBuilder("fam_sandwich")
    g1 = b.add_op(*builders.gemm("f1", 16, 10, 12))
    act = b.add_op(*builders.gelu("act", (16, 12)), deps=[g1])
    g2 = b.add_op(*builders.gemm("f2", 16, 12, 8), deps=[act])
    b.add_op(*builders.layer_norm("ln", (16, 8)), deps=[g2])
    return b.build()


FAMILIES = {
    "attention": _attention_dag,
    "epilogue": _epilogue_dag,
    "prologue": _prologue_dag,
    "sandwich": _sandwich_dag,
}

PRESETS = {"xeon": xeon_gold_6240, "ascend": ascend_910}


def _stitched_chain_node(partition):
    """The single stitched chain node these family DAGs produce."""
    stitched = [
        node
        for node in partition.chains
        if partition.stitched_record(node.name) is not None
    ]
    assert len(stitched) == 1, [n.name for n in partition.chains]
    return stitched[0]


def _dram_boundary(hw) -> str:
    """Traffic through the outermost on-chip level crosses to DRAM."""
    return hw.on_chip_levels[-1].name


def _plan_traffic(plan, hw) -> float:
    """Simulated per-execution DRAM-boundary bytes for a network plan."""
    level = _dram_boundary(hw)
    total = 0.0
    for node in plan.nodes:
        for fusion_plan in node.plans:
            program = lower_plan(fusion_plan)
            total += measure_movement_lines(
                fusion_plan.chain, hw, program, level
            )
    return total


class TestDifferentialStitching:
    """Per family x preset: numerics, traffic, and plan determinism."""

    @pytest.mark.parametrize("preset", sorted(PRESETS), ids=str)
    @pytest.mark.parametrize("family", sorted(FAMILIES), ids=str)
    def test_stitched_execution_matches_reference(self, family, preset):
        dag = FAMILIES[family]()
        hw = PRESETS[preset]()
        partition = partition_graph(dag)
        node = _stitched_chain_node(partition)
        plan = compile_network(dag, hw)
        compiled = plan.node(node.name)
        assert compiled.stitched  # glue was folded, not dropped
        for fusion_plan in compiled.plans:
            chain = fusion_plan.chain
            program = lower_plan(fusion_plan)
            inputs = random_inputs(chain, seed=11)
            got = execute_program(program, inputs)
            reference = execute_reference(chain, inputs)
            for name, expected in reference.items():
                np.testing.assert_allclose(
                    got[name], expected, rtol=1e-6, atol=1e-9,
                    err_msg=f"{family}/{preset} tensor {name}",
                )

    @pytest.mark.parametrize("family", sorted(FAMILIES), ids=str)
    def test_stitched_dram_traffic_below_unstitched(self, family):
        dag = FAMILIES[family]()
        hw = xeon_gold_6240()
        stitched = compile_network(dag, hw, stitch=True)
        unstitched = compile_network(dag, hw, stitch=False)
        stitched_bytes = _plan_traffic(stitched, hw)
        unstitched_bytes = _plan_traffic(unstitched, hw)
        assert stitched_bytes < unstitched_bytes, (
            f"{family}: stitched {stitched_bytes} >= "
            f"unstitched {unstitched_bytes}"
        )

    @pytest.mark.parametrize("family", sorted(FAMILIES), ids=str)
    def test_plans_byte_identical_across_caches_and_engines(
        self, family, tmp_path, monkeypatch
    ):
        dag = FAMILIES[family]()
        hw = xeon_gold_6240()
        baseline = network_plan_json(compile_network(dag, hw))

        service = CompileService(cache_dir=tmp_path / "plans")
        cold = compile_network(dag, hw, service=service)
        warm = compile_network(dag, hw, service=service)
        assert network_plan_json(cold) == baseline
        assert network_plan_json(warm) == baseline
        assert service.stats()["hits"] == len(warm.nodes)

        for engine in ("scalar", "tables"):
            monkeypatch.setenv("REPRO_MODEL_ENGINE", engine)
            assert network_plan_json(compile_network(dag, hw)) == baseline


# ----------------------------------------------------------------------
# Fuzzed partitioner properties over DAGs with interleaved MI ops
# ----------------------------------------------------------------------
def _random_mi_dag(rng: random.Random, index: int) -> ComputeDAG:
    """Random DAG interleaving CI single ops with stitchable MI glue."""
    b = GraphBuilder(f"stitch_fuzz_{index}")
    names = []
    rows, cols = 8, 8
    for node_index in range(rng.randint(3, 9)):
        deps = rng.sample(names, k=min(len(names), rng.randint(0, 2)))
        repeat = rng.choice([1, 1, 2])
        roll = rng.random()
        if roll < 0.35:
            op, tensors = builders.gemm(
                f"gemm{node_index}", rows, rng.choice([4, 8]), cols
            )
        elif roll < 0.45:
            op, tensors = builders.batch_gemm(
                f"bmm{node_index}", 2, rows, 4, cols
            )
        elif roll < 0.65:
            kind = rng.choice([builders.relu, builders.gelu, builders.bias_add])
            op, tensors = kind(f"ew{node_index}", (rows, cols))
        elif roll < 0.85:
            op, tensors = builders.softmax(f"sm{node_index}", (rows, cols))
        else:
            op, tensors = builders.layer_norm(f"ln{node_index}", (rows, cols))
        names.append(b.add_op(op, tensors, deps=deps, repeat=repeat))
    return b.build()


@pytest.mark.parametrize("seed", range(12))
def test_fuzzed_stitching_properties(seed):
    rng = random.Random(1000 + seed)
    dag = _random_mi_dag(rng, seed)
    partition = partition_graph(dag)
    partition.validate(dag)  # exactly-one membership + topological order

    by_name = {node.name: node for node in dag.nodes}
    for record in partition.stitched:
        # A stitched node folds >= 2 members around >= 1 CI op, and all
        # members share the repeat count (they run as one kernel).
        assert len(record.members) >= 2
        assert record.stitched
        assert len(record.node.chain.compute_intensive_ops()) >= 1
        repeats = {by_name[m].repeat for m in record.members}
        assert len(repeats) == 1
        assert record.node.repeat in repeats
        # Role labels are consistent with member positions.
        for op in record.stitched:
            assert op.role in ("prologue", "epilogue", "sandwich")
            assert op.node in record.members
        # Folding conserves flops member by member.
        member_flops = sum(
            by_name[m].chain.total_flops() for m in record.members
        )
        assert record.node.chain.total_flops() == member_flops
    assert partition.total_flops() == dag.total_flops()

    # The stitched chains themselves execute correctly when fused.
    hw = xeon_gold_6240()
    for record in partition.stitched[:2]:
        plan = compile_network(dag, hw)
        compiled = plan.node(record.node.name)
        for fusion_plan in compiled.plans:
            chain = fusion_plan.chain
            program = lower_plan(fusion_plan)
            inputs = random_inputs(chain, seed=seed)
            got = execute_program(program, inputs)
            for name, expected in execute_reference(chain, inputs).items():
                np.testing.assert_allclose(
                    got[name], expected, rtol=1e-6, atol=1e-9,
                    err_msg=f"seed {seed} node {record.node.name} {name}",
                )
        break  # one compile per seed keeps the fuzz cheap


# ----------------------------------------------------------------------
# Prologue regression: leading elementwise glue must not drop fusion
# ----------------------------------------------------------------------
class TestPrologueRegression:
    def test_leading_elementwise_keeps_chain_fusable(self):
        dag = _prologue_dag()
        partition = partition_graph(dag)
        node = _stitched_chain_node(partition)
        record = partition.stitched_record(node.name)
        assert record.members[0] == "pre"
        assert [s.role for s in record.stitched] == ["prologue"]
        # Both GEMMs of the would-be chain survive the fold.
        assert len(node.chain.compute_intensive_ops()) == 2
        assert partition.remainder == ()

    def test_prologue_fusion_decision_not_dropped(self):
        """The fused-vs-unfused decision must still see the CI chain."""
        dag = _prologue_dag()
        hw = xeon_gold_6240()
        plan = compile_network(dag, hw)
        node = _stitched_chain_node(partition_graph(dag))
        compiled = plan.node(node.name)
        assert compiled.fusable
        # The same chain without the prologue fuses; attaching glue must
        # not flip that decision (same movement structure, less traffic).
        bare = compile_network(dag, hw, stitch=False)
        bare_chain = bare.node(gemm_chain(12, 8, 10, 9).name)
        assert compiled.fused == bare_chain.fused

    def test_stitch_nodes_rejects_single_stage(self):
        dag = _prologue_dag()
        with pytest.raises(StitchError, match="two"):
            stitch_nodes("solo", [dag.nodes[0]])


# ----------------------------------------------------------------------
# Acceptance: Bert-Base attention with the softmax on chip
# ----------------------------------------------------------------------
class TestBertBaseAcceptance:
    def test_attention_softmax_is_stitched_on_chip(self):
        assert stitching_enabled()
        dag = build_network(network_config("Bert-Base"))
        partition = partition_graph(dag)
        names = [n.name for n in partition.chains]
        merged = "attention_score+attention_softmax+attention_value"
        assert merged in names
        record = partition.stitched_record(merged)
        assert [s.tag for s in record.stitched] == ["softmax"]
        assert [s.role for s in record.stitched] == ["sandwich"]
        # The softmax bridge tensors are chain intermediates now: neither
        # its input nor its output crosses the kernel boundary.
        chain = record.node.chain
        io = set(chain.input_tensors()) | set(chain.output_tensors())
        softmax_tensors = {
            access.tensor
            for op in chain.ops
            if op.tag == "softmax"
            for access in (*op.reads, *op.writes)
        }
        assert softmax_tensors.isdisjoint(io)

    def test_attention_dram_traffic_eliminated(self):
        """Line-cache simulation: stitching removes the softmax
        intermediate's DRAM reads entirely (with the full shared LLC,
        the fused kernel's fills are the compulsory IO bytes only), and
        total DRAM-boundary traffic drops strictly even under the
        per-core capacity split."""
        from repro.runtime.pipeline import compile_chain

        dag = build_network(network_config("Bert-Base"))
        hw = xeon_gold_6240()
        level = _dram_boundary(hw)

        merged_chain = partition_graph(dag).chains[0].chain
        assert "softmax" in {op.tag for op in merged_chain.ops}
        kernels = compile_chain(merged_chain, hw).kernels
        stitched_fills: dict = {}
        stitched_total = 0.0
        for k in kernels:
            stitched_total += measure_movement_lines(
                k.chain, hw, k.program, level
            )
            per_tensor = boundary_fill_traffic(
                k.chain, hw, k.program, shared_capacity_per_core=False
            )
            for tensor, fills in per_tensor.items():
                stitched_fills[tensor] = stitched_fills.get(tensor, 0) + fills
        # The softmax bridge tensors never cross the DRAM boundary.
        for tensor in merged_chain.intermediate_tensors():
            assert stitched_fills[tensor] == 0, (tensor, stitched_fills)

        unstitched = partition_graph(dag, stitch=False)
        members = ("attention_score", "attention_softmax", "attention_value")
        unstitched_total = 0.0
        bridge_reads = 0
        for node in unstitched.remainder:
            if node.name not in members:
                continue
            for k in compile_chain(node.chain, hw).kernels:
                unstitched_total += measure_movement_lines(
                    k.chain, hw, k.program, level
                )
                per_tensor = boundary_fill_traffic(
                    k.chain, hw, k.program, shared_capacity_per_core=False
                )
                for tensor in k.chain.input_tensors():
                    if node.name in ("attention_softmax", "attention_value"):
                        bridge_reads += per_tensor[tensor]
        # Unstitched, the bridge is re-read cold from DRAM: at least one
        # full fetch of the softmax input and of the softmax output.
        softmax_chain = dag.node("attention_softmax").chain
        bridge_nbytes = sum(
            softmax_chain.tensors[t].nbytes
            for t in softmax_chain.input_tensors()
        )
        assert bridge_reads >= 2 * bridge_nbytes
        assert stitched_total < unstitched_total
