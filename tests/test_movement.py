"""Tests for Algorithm 1 (data movement volume and memory usage)."""

import math

import pytest

from repro.core.movement import MovementModel, algorithm1, executed_flops
from repro.ir.chains import batch_gemm_chain, conv_chain, gemm_chain


@pytest.fixture
def square_chain():
    return gemm_chain(2048, 2048, 2048, 2048)


class TestTableIII:
    """The paper's Table III closed forms under the mlkn order."""

    def test_dv_matches_closed_form(self, square_chain):
        m = n = k = l = 2048
        tm, tn, tk, tl = 64, 32, 32, 64
        tiles = {"m": tm, "n": tn, "k": tk, "l": tl}
        dv, _ = algorithm1(square_chain, ("m", "l", "k", "n"), tiles)
        expected_elements = (
            m * k * math.ceil(l / tl)
            + k * l * math.ceil(m / tm)
            + n * l * math.ceil(m / tm)
            + m * n * math.ceil(l / tl)
        )
        assert dv == pytest.approx(expected_elements * 2)  # fp16 bytes

    def test_mu_matches_closed_form(self, square_chain):
        tiles = {"m": 64, "n": 32, "k": 32, "l": 64}
        _, mu = algorithm1(square_chain, ("m", "l", "k", "n"), tiles)
        gemm1 = 64 * 32 + 32 * 64 + 64 * 64
        gemm2 = 64 * 64 + 64 * 32 + 64 * 32
        assert mu == pytest.approx(max(gemm1, gemm2) * 2)

    def test_intermediate_moves_nothing(self, square_chain):
        model = MovementModel(square_chain, ("m", "l", "k", "n"))
        per_tensor = model.per_tensor({"m": 64, "n": 32, "k": 32, "l": 64})
        assert per_tensor["C"] == 0.0

    def test_model_agrees_with_algorithm1(self, square_chain):
        tiles = {"m": 128, "n": 16, "k": 64, "l": 256}
        for perm in [("m", "l", "k", "n"), ("m", "n", "k", "l"), ("l", "m", "n", "k")]:
            dv_ref, _ = algorithm1(square_chain, perm, tiles)
            model = MovementModel(square_chain, perm)
            assert model.volume(tiles) == pytest.approx(dv_ref)


class TestObservations:
    """The paper's three observations about data movement."""

    def test_obs1_non_accessing_inner_loops_free(self, square_chain):
        # Under mknl, loops n, l are innermost and do not access A.
        model = MovementModel(square_chain, ("m", "k", "n", "l"))
        a_terms = [t for t in model.terms if t.tensor == "A"]
        multiplier_loops = {n for t in a_terms for n, _ in t.multipliers}
        assert "l" not in multiplier_loops and "n" not in multiplier_loops

    def test_obs2_outer_loops_multiply_once_flipped(self, square_chain):
        # Under mnlk, k flips reuse for A; l and m are outside, n is not
        # a gemm1 loop.
        model = MovementModel(square_chain, ("m", "n", "l", "k"))
        a_term = next(t for t in model.terms if t.tensor == "A")
        assert {n for n, _ in a_term.multipliers} == {"k", "l", "m"}

    def test_obs3_producer_private_loop_free_for_consumer(self, square_chain):
        # k is private to gemm1; D and E never multiply by k's trip count.
        for perm in [("k", "m", "l", "n"), ("m", "k", "l", "n")]:
            model = MovementModel(square_chain, perm)
            for tensor in ("D", "E"):
                term = next(t for t in model.terms if t.tensor == tensor)
                assert "k" not in {n for n, _ in term.multipliers}


class TestEdgeClamping:
    def test_full_sweep_touches_exact_extent(self):
        chain = gemm_chain(100, 100, 100, 100)
        # Non-dividing tile: 100/48 -> 3 trips averaging 33.3 wide.
        model = MovementModel(chain, ("m", "l", "k", "n"))
        tiles = {"m": 48, "l": 100, "k": 100, "n": 100}
        per = model.per_tensor(tiles)
        # B is swept fully once per m trip: exactly K*L*3 elements.
        assert per["B"] == pytest.approx(100 * 100 * 3 * 2)


class TestDistributionBuffers:
    def test_late_divergence_keeps_plain_tile(self, square_chain):
        model = MovementModel(square_chain, ("m", "l", "k", "n"))
        # The loops below the divergence (k, n) do not index C, so the
        # buffer stays at the plain tile footprint.
        producer = square_chain.op("gemm1")
        c_access = producer.access_of("C")
        assert not any(
            c_access.uses(name) for name in model.buffered_full_loops("C")
        )
        assert not model.has_enlarged_buffers

    def test_early_divergence_buffers_full_loops(self, square_chain):
        model = MovementModel(square_chain, ("k", "m", "n", "l"))
        assert "l" in model.buffered_full_loops("C")
        assert model.has_enlarged_buffers

    def test_enlarged_buffer_grows_usage(self, square_chain):
        tiles = {"m": 64, "n": 64, "k": 64, "l": 64}
        late = MovementModel(square_chain, ("m", "l", "k", "n"))
        early = MovementModel(square_chain, ("k", "m", "n", "l"))
        assert early.usage(tiles) > late.usage(tiles)

    def test_no_reuse_mode_has_no_buffers(self, square_chain):
        model = MovementModel(
            square_chain, ("k", "m", "n", "l"), reuse_intermediates=False
        )
        assert not model.has_enlarged_buffers

    def test_no_reuse_counts_intermediate(self, square_chain):
        tiles = {"m": 64, "n": 64, "k": 64, "l": 64}
        with_reuse = MovementModel(square_chain, ("m", "l", "k", "n"))
        without = MovementModel(
            square_chain, ("m", "l", "k", "n"), reuse_intermediates=False
        )
        assert without.volume(tiles) > with_reuse.volume(tiles)
        assert without.per_tensor(tiles)["C"] > 0


class TestPermValidation:
    def test_unknown_loop_rejected(self, square_chain):
        with pytest.raises(ValueError, match="unknown"):
            MovementModel(square_chain, ("m", "l", "k", "z"))

    def test_repeated_loop_rejected(self, square_chain):
        with pytest.raises(ValueError, match="repeats"):
            MovementModel(square_chain, ("m", "m", "k", "n"))

    def test_missing_loop_rejected(self, square_chain):
        with pytest.raises(ValueError, match="misses"):
            MovementModel(square_chain, ("m", "l", "k"))

    def test_degenerate_loops_may_be_omitted(self):
        chain = batch_gemm_chain(1, 16, 16, 16, 16)
        model = MovementModel(chain, ("m", "l", "k", "n"))  # b omitted
        assert model.volume({"m": 8, "l": 8, "k": 8, "n": 8}) > 0


class TestSignature:
    def test_equal_signature_equal_dv(self, square_chain):
        # mlkn and mlnk project identically per operator.
        a = MovementModel(square_chain, ("m", "l", "k", "n"))
        b = MovementModel(square_chain, ("m", "l", "n", "k"))
        assert a.signature == b.signature
        tiles = {"m": 96, "n": 32, "k": 48, "l": 80}
        assert a.volume(tiles) == pytest.approx(b.volume(tiles))

    def test_different_orders_different_signature(self, square_chain):
        a = MovementModel(square_chain, ("m", "l", "k", "n"))
        b = MovementModel(square_chain, ("m", "n", "k", "l"))
        assert a.signature != b.signature


class TestExecutedFlops:
    def test_gemm_chain_no_recompute(self, square_chain):
        tiles = {"m": 64, "n": 64, "k": 64, "l": 64}
        flops = executed_flops(square_chain, ("m", "l", "k", "n"), tiles)
        assert flops == pytest.approx(square_chain.total_flops())

    def test_conv_halo_recompute_exceeds_algorithmic(self):
        chain = conv_chain(1, 8, 32, 32, 16, 8, 1, 1, 1, 3)
        order = tuple(
            n for n in chain.independent_loops()
            if chain.loop_extents()[n] > 1
        )
        tiles = {n: 4 for n in order}
        flops = executed_flops(chain, order, tiles)
        assert flops > chain.total_flops()

    def test_full_tiles_match_algorithmic_for_conv(self):
        chain = conv_chain(1, 8, 32, 32, 16, 8, 1, 1, 3, 1)
        extents = chain.loop_extents()
        order = tuple(n for n in chain.independent_loops() if extents[n] > 1)
        tiles = {n: extents[n] for n in order}
        flops = executed_flops(chain, order, tiles)
        assert flops == pytest.approx(chain.total_flops(), rel=1e-6)
