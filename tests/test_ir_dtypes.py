"""Tests for repro.ir.dtypes."""

import numpy as np
import pytest

from repro.ir.dtypes import FP16, FP32, FP64, INT8, INT32, dtype


class TestDType:
    def test_byte_widths(self):
        assert FP16.nbytes == 2
        assert FP32.nbytes == 4
        assert FP64.nbytes == 8
        assert INT8.nbytes == 1
        assert INT32.nbytes == 4

    def test_numpy_mapping(self):
        assert FP16.numpy == np.dtype("float16")
        assert FP32.numpy == np.dtype("float32")
        assert INT32.numpy == np.dtype("int32")

    def test_str(self):
        assert str(FP16) == "fp16"

    def test_lookup_by_name(self):
        assert dtype("fp16") is FP16
        assert dtype("int8") is INT8

    def test_lookup_unknown_raises_with_candidates(self):
        with pytest.raises(KeyError, match="fp16"):
            dtype("bf16")

    def test_frozen(self):
        with pytest.raises(Exception):
            FP16.nbytes = 4
