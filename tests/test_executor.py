"""Numerical correctness of block program execution.

The central property: for any valid block order and tiling, the fused
block-structured execution matches the whole-operator reference.
"""

import numpy as np
import pytest

from repro.codegen.executor import (
    execute_plan,
    execute_program,
    execute_reference,
    random_inputs,
    virtual_shapes,
)
from repro.codegen.program import LevelSpec, lower_levels, lower_schedule
from repro.core.optimizer import ChimeraOptimizer
from repro.hardware import xeon_gold_6240
from repro.ir.chains import batch_gemm_chain, conv_chain, gemm_chain


def assert_matches_reference(chain, order, tiles, seed=0):
    program = lower_schedule(chain, order, tiles)
    inputs = random_inputs(chain, seed)
    got = execute_program(program, inputs)
    ref = execute_reference(chain, inputs)
    for name, expected in ref.items():
        np.testing.assert_allclose(got[name], expected, rtol=1e-9, atol=1e-11)


class TestGemmChains:
    def test_basic_order(self):
        chain = gemm_chain(32, 16, 8, 24)
        assert_matches_reference(
            chain, ("m", "l", "k", "n"), {"m": 8, "l": 8, "k": 4, "n": 8}
        )

    def test_reduction_outermost_still_correct(self):
        chain = gemm_chain(32, 16, 8, 24)
        assert_matches_reference(
            chain, ("k", "m", "n", "l"), {"m": 8, "l": 8, "k": 4, "n": 8}
        )

    def test_non_dividing_tiles(self):
        chain = gemm_chain(30, 14, 10, 22)
        assert_matches_reference(
            chain, ("m", "l", "k", "n"), {"m": 7, "l": 9, "k": 3, "n": 5}
        )

    def test_batch_chain(self):
        chain = batch_gemm_chain(3, 16, 8, 8, 16)
        assert_matches_reference(
            chain,
            ("b", "m", "l", "k", "n"),
            {"b": 2, "m": 8, "l": 8, "k": 4, "n": 4},
        )


class TestSoftmaxChains:
    def test_softmax_fusion_trick(self):
        # The deferred row-sum division must equal real softmax numerics.
        chain = batch_gemm_chain(2, 16, 8, 8, 16, with_softmax=True)
        assert_matches_reference(
            chain,
            ("b", "m", "l", "k", "n"),
            {"b": 1, "m": 4, "l": 4, "k": 4, "n": 4},
        )

    def test_softmax_with_split_l(self):
        # The row sum accumulates across l blocks.
        chain = batch_gemm_chain(1, 8, 8, 8, 32, with_softmax=True)
        assert_matches_reference(
            chain,
            ("b", "m", "l", "k", "n"),
            {"b": 1, "m": 4, "l": 8, "k": 8, "n": 8},
        )

    def test_standalone_softmax_kernel(self):
        from repro.ir import builders
        from repro.ir.chain import single_op_chain

        op, tensors = builders.softmax("s", (2, 8, 16))
        chain = single_op_chain(op, tensors)
        order = tuple(op.loop_names)
        program = lower_schedule(chain, order, {n: 4 for n in order})
        inputs = random_inputs(chain, 3)
        got = execute_program(program, inputs)
        ref = execute_reference(chain, inputs)
        np.testing.assert_allclose(got["s.Y"], ref["s.Y"], rtol=1e-9)


class TestConvChains:
    def test_pointwise_then_pointwise(self):
        chain = conv_chain(1, 8, 12, 12, 12, 10, 1, 1, 1, 1)
        order = _nondegenerate_order(chain)
        assert_matches_reference(
            chain, order, {n: 4 for n in order}
        )

    def test_strided_3x3_then_pointwise(self):
        chain = conv_chain(2, 8, 14, 14, 6, 10, 2, 1, 3, 1)
        order = _nondegenerate_order(chain)
        tiles = {n: 3 for n in order}
        assert_matches_reference(chain, order, tiles)

    def test_halo_recompute_pointwise_then_3x3(self):
        chain = conv_chain(1, 8, 16, 16, 12, 10, 1, 1, 1, 3)
        order = _nondegenerate_order(chain)
        assert_matches_reference(chain, order, {n: 4 for n in order})

    def test_relu_chain(self):
        chain = conv_chain(1, 8, 16, 16, 12, 10, 1, 1, 1, 3, with_relu=True)
        order = _nondegenerate_order(chain)
        assert_matches_reference(chain, order, {n: 4 for n in order})

    def test_double_3x3(self):
        chain = conv_chain(1, 6, 12, 12, 8, 6, 1, 1, 3, 3)
        order = _nondegenerate_order(chain)
        assert_matches_reference(chain, order, {n: 3 for n in order})


class TestHierarchicalExecution:
    def test_two_level_nesting(self):
        chain = batch_gemm_chain(2, 32, 16, 16, 32, with_softmax=True)
        levels = [
            LevelSpec(("b", "m", "l", "k", "n"),
                      {"b": 2, "m": 16, "l": 16, "k": 16, "n": 16}),
            LevelSpec(("b", "m", "l", "k", "n"),
                      {"b": 1, "m": 8, "l": 4, "k": 8, "n": 8}),
        ]
        program = lower_levels(chain, levels)
        inputs = random_inputs(chain, 9)
        got = execute_program(program, inputs)
        ref = execute_reference(chain, inputs)
        np.testing.assert_allclose(got["E"], ref["E"], rtol=1e-9)

    def test_execute_plan_full_hierarchy(self):
        chain = batch_gemm_chain(2, 32, 16, 16, 32)
        plan = ChimeraOptimizer(xeon_gold_6240()).optimize(chain)
        inputs = random_inputs(chain, 5)
        got = execute_plan(plan, inputs)
        ref = execute_reference(chain, inputs)
        np.testing.assert_allclose(got["E"], ref["E"], rtol=1e-9)


class TestInputValidation:
    def test_missing_input_raises(self):
        chain = gemm_chain(8, 8, 8, 8)
        program = lower_schedule(
            chain, ("m", "l", "k", "n"), {"m": 4, "l": 4, "k": 4, "n": 4}
        )
        with pytest.raises(ValueError, match="missing"):
            execute_program(program, {})

    def test_wrong_shape_raises(self):
        chain = gemm_chain(8, 8, 8, 8)
        program = lower_schedule(
            chain, ("m", "l", "k", "n"), {"m": 4, "l": 4, "k": 4, "n": 4}
        )
        inputs = random_inputs(chain)
        inputs["A"] = np.zeros((4, 4))
        with pytest.raises(ValueError, match="shape"):
            execute_program(program, inputs)

    def test_virtual_shapes_cover_halo(self):
        chain = conv_chain(1, 8, 16, 16, 12, 10, 1, 1, 3, 3)
        shapes = virtual_shapes(chain)
        # X must cover (OH-1)*1 + halo of both kernels.
        assert shapes["X"][2] >= 16
        assert shapes["Y1"][2] >= 16

    def test_random_inputs_deterministic(self):
        chain = gemm_chain(8, 8, 8, 8)
        a = random_inputs(chain, seed=7)
        b = random_inputs(chain, seed=7)
        for name in a:
            np.testing.assert_array_equal(a[name], b[name])


def _nondegenerate_order(chain):
    extents = chain.loop_extents()
    return tuple(n for n in chain.independent_loops() if extents[n] > 1)
