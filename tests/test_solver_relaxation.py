"""Tests for solver minimum-tile relaxation and validation measurement."""

import pytest

from repro.analysis.validation import measure_movement
from repro.core.movement import MovementModel
from repro.core.solver import solve_tiles
from repro.hardware import xeon_gold_6240
from repro.ir.chains import batch_gemm_chain, conv_chain, gemm_chain


class TestSoftMinRelaxation:
    def test_soft_minimums_relax_under_pressure(self):
        # Capacity too small for the requested minimums: the solver must
        # drop them rather than return garbage.
        chain = gemm_chain(256, 256, 256, 256)
        model = MovementModel(chain, ("m", "l", "k", "n"))
        solution = solve_tiles(
            model,
            16 * 1024.0,  # 16KB: min tiles of 64 cannot fit
            min_tiles={n: 64 for n in "mnkl"},
        )
        assert solution.feasible
        assert solution.mu <= 16 * 1024.0

    def test_hard_minimums_survive_relaxation(self):
        chain = gemm_chain(256, 256, 256, 256)
        model = MovementModel(chain, ("m", "l", "k", "n"))
        solution = solve_tiles(
            model,
            64 * 1024.0,
            min_tiles={"m": 64, "l": 64},
            hard_min_tiles={"k": 256},
        )
        assert solution.tiles["k"] == 256

    def test_feasible_minimums_kept(self):
        chain = gemm_chain(256, 256, 256, 256)
        model = MovementModel(chain, ("m", "l", "k", "n"))
        solution = solve_tiles(
            model, 512 * 1024.0, min_tiles={"n": 32, "k": 32}
        )
        assert solution.tiles["n"] >= 32 and solution.tiles["k"] >= 32


class TestMeasureMovement:
    @pytest.fixture(scope="class")
    def setup(self):
        chain = gemm_chain(128, 128, 128, 128)
        hw = xeon_gold_6240()
        order = ("m", "l", "k", "n")
        tiles = {"m": 32, "l": 32, "k": 32, "n": 32}
        return chain, hw, order, tiles

    def test_no_reuse_moves_more(self, setup):
        chain, hw, order, tiles = setup
        with_reuse = measure_movement(chain, hw, order, tiles, "L1")
        without = measure_movement(
            chain, hw, order, tiles, "L1", reuse_intermediates=False
        )
        assert without > with_reuse

    def test_outer_boundary_not_above_inner(self, setup):
        chain, hw, order, tiles = setup
        inner = measure_movement(chain, hw, order, tiles, "L1")
        outer = measure_movement(chain, hw, order, tiles, "L3")
        assert outer <= inner * 1.01

    def test_movement_at_least_io(self, setup):
        chain, hw, order, tiles = setup
        measured = measure_movement(chain, hw, order, tiles, "L3")
        assert measured >= chain.io_bytes() * 0.9

    def test_conv_chain_measurable(self):
        chain = conv_chain(1, 8, 16, 16, 12, 10, 2, 1, 3, 1)
        hw = xeon_gold_6240()
        extents = chain.loop_extents()
        order = tuple(n for n in chain.independent_loops() if extents[n] > 1)
        tiles = {n: 4 for n in extents}
        measured = measure_movement(chain, hw, order, tiles, "L1")
        assert measured > 0
