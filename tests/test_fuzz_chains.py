"""Fuzzing: random linear chains must plan, execute and model correctly.

A generator assembles random chains — GEMM / batch GEMM / conv / depthwise
stages with random shapes, interleaved with random element-wise operators —
then three properties are checked under random block orders and tilings:

1. the block-structured execution matches the whole-operator reference;
2. ``algorithm1`` (the paper's literal transcription) agrees with the
   optimizer's compiled :class:`MovementModel` on DV;
3. the full optimizer produces feasible schedules at every memory level.
"""

import random

import numpy as np
import pytest

from repro.codegen import (
    execute_program,
    execute_reference,
    lower_schedule,
    random_inputs,
)
from repro.core.movement import MovementModel, algorithm1
from repro.core.optimizer import ChimeraOptimizer
from repro.hardware import xeon_gold_6240
from repro.ir import builders
from repro.ir.chains import fuse_sequence


def _random_chain(rng: random.Random):
    """A random 2-4 stage linear chain with compatible shapes."""
    kind = rng.choice(["gemm", "conv"])
    stages = []
    if kind == "gemm":
        batch = rng.choice([1, 2, 3])
        m = rng.choice([12, 16, 24])
        size = rng.choice([8, 12, 16])
        stages.append(
            builders.batch_gemm(
                "s0", batch, m, rng.choice([8, 12]), size,
                lhs="A", rhs="B0", out="T0",
            )
        )
        current = ("T0", (batch, m, size))
        extra = rng.randint(0, 2)
        for index in range(1, 1 + extra):
            if rng.random() < 0.4:
                op = rng.choice([builders.relu, builders.gelu])
                stages.append(
                    op(f"e{index}", current[1],
                       src=current[0], out=f"T{index}")
                )
                current = (f"T{index}", current[1])
            else:
                new_size = rng.choice([8, 12, 16])
                stages.append(
                    builders.batch_gemm(
                        f"s{index}", batch, m, current[1][2], new_size,
                        lhs=current[0], rhs=f"B{index}", out=f"T{index}",
                    )
                )
                current = (f"T{index}", (batch, m, new_size))
        # Always end on a compute stage so the chain is CI-terminated.
        stages.append(
            builders.batch_gemm(
                "sf", batch, m, current[1][2], rng.choice([8, 16]),
                lhs=current[0], rhs="Bf", out="Y",
            )
        )
    else:
        batch = 1
        channels = rng.choice([3, 4, 6])
        h = w = rng.choice([8, 10, 12])
        k1 = rng.choice([1, 3])
        st1 = rng.choice([1, 2])
        oc1 = rng.choice([4, 6])
        stages.append(
            builders.conv2d(
                "c0", batch, channels, h, w, oc1, k1, st1,
                data="X", weight="W0", out="T0",
            )
        )
        h, w = h // st1, w // st1
        current = ("T0", (batch, oc1, h, w))
        if rng.random() < 0.5:
            stages.append(
                builders.relu("e1", current[1], src=current[0], out="T1")
            )
            current = ("T1", current[1])
        k2 = rng.choice([1, 3])
        stages.append(
            builders.conv2d(
                "cf", batch, oc1, h, w, rng.choice([4, 5]), k2, 1,
                data=current[0], weight="Wf", out="Y",
            )
        )
    return fuse_sequence(f"fuzz_{kind}", stages)


def _random_order_and_tiles(rng: random.Random, chain):
    extents = chain.loop_extents()
    order = [n for n in chain.independent_loops() if extents[n] > 1]
    rng.shuffle(order)
    tiles = {
        n: rng.choice([t for t in (2, 3, 4, 8) if t <= extents[n]] or [1])
        for n in extents
    }
    return tuple(order), tiles


@pytest.mark.parametrize("seed", range(12))
def test_fuzzed_chain_execution_matches_reference(seed):
    rng = random.Random(seed)
    chain = _random_chain(rng)
    order, tiles = _random_order_and_tiles(rng, chain)
    program = lower_schedule(chain, order, tiles)
    inputs = random_inputs(chain, seed)
    got = execute_program(program, inputs)
    reference = execute_reference(chain, inputs)
    for name, expected in reference.items():
        np.testing.assert_allclose(
            got[name], expected, rtol=1e-9, atol=1e-11,
            err_msg=f"seed {seed} chain {chain.describe()}",
        )


@pytest.mark.parametrize("seed", range(12))
def test_fuzzed_chain_model_consistency(seed):
    rng = random.Random(100 + seed)
    chain = _random_chain(rng)
    order, tiles = _random_order_and_tiles(rng, chain)
    dv_literal, _ = algorithm1(chain, order, tiles)
    model = MovementModel(chain, order)
    assert model.volume(tiles) == pytest.approx(dv_literal)
    assert model.volume(tiles) >= chain.io_bytes() * (1 - 1e-9)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(6))
def test_fuzzed_chain_plans_feasibly(seed):
    rng = random.Random(200 + seed)
    chain = _random_chain(rng)
    plan = ChimeraOptimizer(xeon_gold_6240()).optimize(chain)
    for sched in plan.levels:
        assert sched.predicted_mu <= sched.capacity * 1.0001, chain.describe()
    inputs = random_inputs(chain, seed)
    from repro.codegen import execute_plan

    got = execute_plan(plan, inputs)
    reference = execute_reference(chain, inputs)
    for name, expected in reference.items():
        np.testing.assert_allclose(got[name], expected, rtol=1e-9, atol=1e-11)
