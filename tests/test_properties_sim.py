"""Property-based tests for the simulator and block programs."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.codegen.program import lower_schedule
from repro.hardware.spec import HardwareSpec, MemoryLevel
from repro.ir.chains import batch_gemm_chain, conv_chain, mlp_chain
from repro.sim.cache import RegionCache
from repro.sim.hierarchy import MemoryHierarchySim
from repro.sim.trace import trace_program

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class _ReferenceLRU:
    """A naive, obviously-correct LRU used to cross-check RegionCache."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.entries = []  # (key, nbytes), most recent last
        self.used = 0

    def access(self, key, nbytes):
        for index, (k, n) in enumerate(self.entries):
            if k == key:
                self.entries.pop(index)
                self.used -= n
                self.entries.append((key, nbytes if False else n))
                self.used += n
                return True
        if nbytes > self.capacity:
            return False
        self.entries.append((key, nbytes))
        self.used += nbytes
        while self.used > self.capacity:
            _, n = self.entries.pop(0)
            self.used -= n
        return False


@given(
    ops=st.lists(
        st.tuples(st.integers(0, 6), st.integers(20, 90)),
        min_size=1,
        max_size=80,
    ),
    capacity=st.integers(100, 400),
)
@SETTINGS
def test_region_cache_matches_reference_lru(ops, capacity):
    cache = RegionCache("L1", capacity)
    reference = _ReferenceLRU(capacity)
    for key, nbytes in ops:
        got = cache.access(key, nbytes)
        want = reference.access(key, nbytes)
        assert got == want, (key, nbytes)
    assert cache.used_bytes == reference.used


@given(
    perm=st.permutations(["b", "m", "n", "k", "l"]),
    tiles=st.tuples(*(st.sampled_from([2, 4, 8]) for _ in range(5))),
)
@SETTINGS
def test_producer_blocks_precede_consumer_blocks(perm, tiles):
    """Dependency preservation: for every intermediate region, its producer
    writes it before any consumer reads it."""
    chain = batch_gemm_chain(2, 16, 8, 8, 16, with_softmax=True)
    tile_map = dict(zip(("b", "m", "n", "k", "l"), tiles))
    tile_map["b"] = min(tile_map["b"], 2)
    program = lower_schedule(chain, perm, tile_map)
    intermediates = set(chain.intermediate_tensors())
    written = set()
    for access in trace_program(program):
        if access.tensor not in intermediates:
            continue
        if access.write:
            written.add((access.tensor, access.region))
        else:
            # Every consumer read region must equal a previously written
            # region (BMM chains have plain accesses: regions align).
            assert (access.tensor, access.region) in written, access


@given(
    perm=st.permutations(["m", "h", "k", "n"]),
    tile=st.sampled_from([4, 8, 16]),
)
@SETTINGS
def test_trace_read_volume_at_least_compulsory(perm, tile):
    chain = mlp_chain(32, 16, 32, 16)
    tiles = {name: tile for name in chain.loop_extents()}
    program = lower_schedule(chain, perm, tiles)
    read = sum(a.nbytes for a in trace_program(program) if not a.write)
    input_bytes = sum(
        chain.tensors[t].nbytes for t in chain.input_tensors()
    )
    assert read >= input_bytes


@given(capacity_kb=st.integers(1, 64))
@SETTINGS
def test_hierarchy_traffic_monotone_in_capacity(capacity_kb):
    """A bigger L1 never increases L1 fill traffic for this trace."""
    chain = batch_gemm_chain(1, 16, 8, 8, 16)
    program = lower_schedule(
        chain,
        ("m", "l", "k", "n"),
        {"m": 4, "l": 4, "k": 4, "n": 4},
    )

    def run(cap_bytes):
        hw = HardwareSpec(
            name="t",
            backend="cpu",
            peak_flops=1e12,
            num_cores=1,
            levels=(
                MemoryLevel("L1", cap_bytes, 1e9),
                MemoryLevel("DRAM", None, 1e9),
            ),
        )
        sim = MemoryHierarchySim(hw)
        for access in trace_program(program):
            if access.write:
                sim.write(access.key, access.nbytes)
            else:
                sim.read(access.key, access.nbytes)
        sim.flush()
        return sim.caches[0].stats.fill_bytes

    small = run(capacity_kb * 1024)
    large = run(capacity_kb * 2 * 1024)
    assert large <= small


def test_conv_trace_regions_inside_virtual_shapes():
    from repro.codegen.executor import virtual_shapes

    chain = conv_chain(1, 4, 10, 10, 6, 5, 2, 1, 3, 3)
    extents = chain.loop_extents()
    order = tuple(n for n in chain.independent_loops() if extents[n] > 1)
    program = lower_schedule(chain, order, {n: 3 for n in extents})
    shapes = virtual_shapes(chain)
    for access in trace_program(program):
        shape = shapes[access.tensor]
        for (lo, hi), size in zip(access.region, shape):
            assert 0 <= lo <= hi <= size
