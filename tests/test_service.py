"""Tests for the compilation service: cache, coalescing, batch, metrics."""

import json
import threading
import time

import pytest

import repro
from repro.core.optimizer import ChimeraConfig, ChimeraOptimizer
from repro.hardware import all_presets, xeon_gold_6240
from repro.ir.chains import batch_gemm_chain, conv_chain
from repro.service import (
    SOURCE_COALESCED,
    SOURCE_COMPILED,
    SOURCE_DISK,
    SOURCE_FALLBACK,
    SOURCE_MEMORY,
    CompilationFailure,
    CompileRequest,
    CompileService,
    PlanCache,
    ServiceMetrics,
    cache_key,
    canonical_request,
    compile_batch,
    percentile,
)


def small_bmm(name=None):
    return batch_gemm_chain(2, 64, 32, 32, 64, name=name)


def small_conv():
    return conv_chain(1, 8, 16, 16, 12, 10, 2, 1, 3, 1)


HW = xeon_gold_6240()


# ----------------------------------------------------------------------
# cache keys
# ----------------------------------------------------------------------
class TestCacheKey:
    @pytest.mark.parametrize("hw", all_presets(), ids=lambda h: h.name)
    @pytest.mark.parametrize(
        "build", [small_bmm, small_conv], ids=["bmm", "conv"]
    )
    def test_stable_across_rebuilds(self, hw, build):
        assert cache_key(build(), hw) == cache_key(build(), hw)

    def test_distinct_across_presets(self):
        chain = small_bmm()
        keys = {cache_key(chain, hw) for hw in all_presets()}
        assert len(keys) == len(all_presets())

    def test_distinct_across_chain_families(self):
        assert cache_key(small_bmm(), HW) != cache_key(small_conv(), HW)

    def test_distinct_across_shapes(self):
        a = batch_gemm_chain(2, 64, 32, 32, 64)
        b = batch_gemm_chain(2, 128, 32, 32, 64)
        assert cache_key(a, HW) != cache_key(b, HW)

    def test_config_and_force_fusion_in_key(self):
        chain = small_bmm()
        base = cache_key(chain, HW)
        assert cache_key(chain, HW, ChimeraConfig(alpha=4)) != base
        assert cache_key(chain, HW, force_fusion=True) != base

    def test_default_config_aliases_none(self):
        """Regression: ``config=None`` and an explicit default config are
        the same request and must hash to the same key (the alias used to
        split one compile across two cache entries)."""
        chain = small_bmm()
        assert cache_key(chain, HW, None) == cache_key(
            chain, HW, ChimeraConfig()
        )

    def test_non_default_config_still_distinct(self):
        chain = small_bmm()
        assert cache_key(chain, HW, ChimeraConfig()) != cache_key(
            chain, HW, ChimeraConfig(top_candidates=32)
        )

    def test_canonical_request_is_json_stable(self):
        chain = small_bmm()
        a = json.dumps(canonical_request(chain, HW), sort_keys=True)
        b = json.dumps(canonical_request(small_bmm(), HW), sort_keys=True)
        assert a == b

    def test_survives_serialization_round_trip(self):
        from repro.runtime.serialization import (
            chain_from_dict,
            chain_to_dict,
            hardware_from_dict,
            hardware_to_dict,
        )

        chain = small_bmm()
        rebuilt_chain = chain_from_dict(chain_to_dict(chain))
        rebuilt_hw = hardware_from_dict(hardware_to_dict(HW))
        assert cache_key(chain, HW) == cache_key(rebuilt_chain, rebuilt_hw)


# ----------------------------------------------------------------------
# the plan cache
# ----------------------------------------------------------------------
def make_entry(key, chain="c", hardware="h"):
    from repro.runtime.serialization import FORMAT_VERSION

    return {
        "format_version": FORMAT_VERSION,
        "key": key,
        "chain": chain,
        "hardware": hardware,
        "use_fusion": True,
        "fused_plan": {"stub": True},
        "unfused_plans": [],
    }


class TestPlanCache:
    def test_memory_round_trip(self):
        cache = PlanCache()
        cache.put("k1", make_entry("k1"))
        assert cache.get("k1")["key"] == "k1"
        assert cache.get("missing") is None

    def test_lru_eviction(self):
        metrics = ServiceMetrics()
        cache = PlanCache(capacity=2, metrics=metrics)
        for key in ("a", "b", "c"):
            cache.put(key, make_entry(key))
        assert cache.get("a") is None  # oldest evicted
        assert cache.get("c") is not None
        assert metrics.get("evictions") == 1

    def test_lru_touch_on_get(self):
        cache = PlanCache(capacity=2)
        cache.put("a", make_entry("a"))
        cache.put("b", make_entry("b"))
        cache.get("a")  # refresh
        cache.put("c", make_entry("c"))
        assert cache.get("a") is not None
        assert cache.get("b") is None

    def test_disk_persistence(self, tmp_path):
        PlanCache(cache_dir=tmp_path).put("k1", make_entry("k1"))
        again = PlanCache(cache_dir=tmp_path)
        entry, tier = again.get_with_tier("k1")
        assert entry["key"] == "k1" and tier == SOURCE_DISK
        # promoted: second lookup is a memory hit
        _, tier = again.get_with_tier("k1")
        assert tier == SOURCE_MEMORY

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        cache = PlanCache(cache_dir=tmp_path)
        cache.put("k1", make_entry("k1"))
        assert [p.name for p in tmp_path.glob("*.tmp")] == []

    def test_corrupt_file_is_a_miss_and_removed(self, tmp_path):
        metrics = ServiceMetrics()
        cache = PlanCache(cache_dir=tmp_path, metrics=metrics)
        bad = tmp_path / "deadbeef.plan.json"
        bad.write_text("{ this is not json")
        assert cache.get("deadbeef") is None
        assert not bad.exists()
        assert metrics.get("corrupt_entries") == 1

    def test_wrong_version_file_is_a_miss(self, tmp_path):
        cache = PlanCache(cache_dir=tmp_path)
        entry = make_entry("k1")
        entry["format_version"] = 99
        (tmp_path / "k1.plan.json").write_text(json.dumps(entry))
        assert cache.get("k1") is None

    def test_missing_field_file_is_a_miss(self, tmp_path):
        cache = PlanCache(cache_dir=tmp_path)
        entry = make_entry("k1")
        del entry["unfused_plans"]
        (tmp_path / "k1.plan.json").write_text(json.dumps(entry))
        assert cache.get("k1") is None

    def test_put_rejects_invalid_entry(self):
        with pytest.raises(ValueError, match="invalid entry"):
            PlanCache().put("k1", {"nope": True})

    def test_clear_and_keys(self, tmp_path):
        cache = PlanCache(cache_dir=tmp_path)
        cache.put("k1", make_entry("k1"))
        cache.put("k2", make_entry("k2"))
        assert sorted(cache.keys()) == ["k1", "k2"]
        assert len(cache) == 2
        assert cache.clear() == 2
        assert cache.keys() == []
        assert cache.disk_keys() == []

    def test_delete(self, tmp_path):
        cache = PlanCache(cache_dir=tmp_path)
        cache.put("k1", make_entry("k1"))
        cache.delete("k1")
        assert cache.get("k1") is None
        assert "k1" not in cache


# ----------------------------------------------------------------------
# warm-path equivalence
# ----------------------------------------------------------------------
class TestWarmPath:
    def test_warm_equals_cold_and_skips_optimizer(self, monkeypatch):
        service = CompileService()
        chain, hw = small_bmm(), HW
        cold = service.compile(chain, hw)

        def boom(self, chain):
            raise AssertionError("optimizer ran on the warm path")

        monkeypatch.setattr(ChimeraOptimizer, "optimize", boom)
        warm = service.compile(chain, hw)
        assert warm.fused == cold.fused
        assert warm.predicted_time == pytest.approx(cold.predicted_time)
        for cold_kernel, warm_kernel in zip(cold.kernels, warm.kernels):
            for a, b in zip(cold_kernel.plan.levels, warm_kernel.plan.levels):
                assert a.order == b.order
                assert dict(a.tiles) == dict(b.tiles)

    def test_warm_across_service_instances(self, tmp_path, monkeypatch):
        chain, hw = small_bmm(), HW
        cold = CompileService(cache_dir=tmp_path).compile(chain, hw)

        def boom(self, chain):
            raise AssertionError("optimizer ran on the disk-warm path")

        monkeypatch.setattr(ChimeraOptimizer, "optimize", boom)
        warm_service = CompileService(cache_dir=tmp_path)
        warm = warm_service.compile(chain, hw)
        assert warm.predicted_time == pytest.approx(cold.predicted_time)
        assert warm_service.stats()["hits_disk"] == 1

    def test_via_compile_chain_service_kwarg(self):
        service = CompileService()
        chain, hw = small_bmm(), HW
        cold = repro.compile_chain(chain, hw, service=service)
        warm = repro.compile_chain(chain, hw, service=service)
        assert warm.predicted_time == pytest.approx(cold.predicted_time)
        stats = service.stats()
        assert stats["hits_memory"] == 1 and stats["misses"] == 1

    def test_force_fusion_respected_and_keyed_separately(self):
        service = CompileService()
        chain, hw = small_bmm(), HW
        fused = service.compile(chain, hw, force_fusion=True)
        unfused = service.compile(chain, hw, force_fusion=False)
        assert fused.fused and not unfused.fused
        assert len(unfused.kernels) == len(chain.ops)
        assert service.stats()["misses"] == 2

    def test_warm_kernels_execute(self):
        service = CompileService()
        chain, hw = small_bmm(), HW
        service.compile(chain, hw)
        warm = service.compile(chain, hw)
        inputs = repro.random_inputs(chain, seed=1)
        outputs = warm.kernels[0](inputs)
        reference = repro.execute_reference(chain, inputs)
        import numpy as np

        np.testing.assert_allclose(
            outputs["E"], reference["E"], rtol=1e-9, atol=1e-11
        )


# ----------------------------------------------------------------------
# failure handling: retry, fallback, isolation
# ----------------------------------------------------------------------
def fail_fused_optimize(monkeypatch, failures):
    """Make whole-chain (multi-op) optimizer runs raise; single ops pass."""
    original = ChimeraOptimizer.optimize

    def flaky(self, chain, **kwargs):
        if len(chain.ops) > 1:
            failures.append(chain.name)
            raise RuntimeError("injected optimizer failure")
        return original(self, chain, **kwargs)

    monkeypatch.setattr(ChimeraOptimizer, "optimize", flaky)


class TestFailureHandling:
    def test_fallback_to_unfused(self, monkeypatch):
        failures = []
        fail_fused_optimize(monkeypatch, failures)
        service = CompileService()
        chain = small_bmm()
        served = service.serve(CompileRequest(chain, HW))
        assert served.ok and served.source == SOURCE_FALLBACK
        assert not served.result.fused
        assert len(served.result.kernels) == len(chain.ops)
        stats = service.stats()
        assert stats["fallbacks"] == 1
        assert stats["retries"] == 1  # retried once before degrading
        assert stats["failures"] == 2
        assert len(failures) == 2

    def test_fallback_not_cached(self, monkeypatch):
        failures = []
        fail_fused_optimize(monkeypatch, failures)
        service = CompileService()
        chain = small_bmm()
        service.serve(CompileRequest(chain, HW))
        assert service.cache.keys() == []
        # A second request re-attempts the real compile (and degrades again).
        served = service.serve(CompileRequest(chain, HW))
        assert served.source == SOURCE_FALLBACK

    def test_fallback_disabled_reports_error(self, monkeypatch):
        fail_fused_optimize(monkeypatch, [])
        service = CompileService(fallback=False)
        served = service.serve(CompileRequest(small_bmm(), HW))
        assert not served.ok
        assert "injected optimizer failure" in served.error
        with pytest.raises(CompilationFailure, match="injected"):
            service.compile(small_bmm(), HW)

    def test_retries_zero(self, monkeypatch):
        failures = []
        fail_fused_optimize(monkeypatch, failures)
        service = CompileService(retries=0)
        service.serve(CompileRequest(small_bmm(), HW))
        assert service.stats()["retries"] == 0
        assert len(failures) == 1


# ----------------------------------------------------------------------
# coalescing
# ----------------------------------------------------------------------
class TestCoalescing:
    def test_concurrent_identical_requests_compile_once(self, monkeypatch):
        from repro.runtime import pipeline

        original = pipeline.compile_chain
        compiles = []

        def slow_compile(chain, hardware, config=None, **kwargs):
            compiles.append(chain.name)
            time.sleep(0.05)  # widen the race window
            return original(chain, hardware, config, **kwargs)

        monkeypatch.setattr(
            "repro.service.service.pipeline.compile_chain", slow_compile
        )
        service = CompileService()
        chain = small_bmm()
        results = []

        def worker():
            results.append(service.serve(CompileRequest(chain, HW)))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(compiles) == 1
        assert all(served.ok for served in results)
        sources = [served.source for served in results]
        assert sources.count(SOURCE_COMPILED) == 1
        # The rest coalesced onto the leader (or, if a thread was scheduled
        # late, hit the already-populated memory tier — either way no
        # duplicate optimizer run).
        assert all(
            source in (SOURCE_COALESCED, SOURCE_MEMORY, SOURCE_COMPILED)
            for source in sources
        )
        stats = service.stats()
        assert stats["compiles"] == 1
        assert stats["coalesced"] + stats["hits_memory"] == 3
        times = {served.result.predicted_time for served in results}
        assert len(times) == 1

    def test_coalesced_requests_are_not_misses(self, monkeypatch):
        """Followers sharing an in-flight compile land in the ``coalesced``
        bucket — never in ``misses`` — and the counters keep the invariant
        ``requests == hits + misses + coalesced``."""
        from repro.runtime import pipeline

        original = pipeline.compile_chain
        barrier = threading.Barrier(4, timeout=10)

        def slow_compile(chain, hardware, config=None, **kwargs):
            barrier.wait()  # leader blocks until all followers queued up
            time.sleep(0.05)
            return original(chain, hardware, config, **kwargs)

        monkeypatch.setattr(
            "repro.service.service.pipeline.compile_chain", slow_compile
        )
        service = CompileService()
        chain = small_bmm()
        results = []

        def leader():
            results.append(service.serve(CompileRequest(chain, HW)))

        def follower():
            barrier.wait()
            results.append(service.serve(CompileRequest(chain, HW)))

        threads = [threading.Thread(target=leader)] + [
            threading.Thread(target=follower) for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        stats = service.stats()
        assert stats["requests"] == 4
        assert stats["misses"] == 1  # only the leader missed
        assert stats["coalesced"] == 3
        assert (
            stats["requests"]
            == stats["hits"] + stats["misses"] + stats["coalesced"]
        )
        assert all(served.ok for served in results)

    def test_corrupt_memory_entry_counts_one_request_one_miss(self):
        """Recovering from a corrupt cached entry must not double-count the
        request or leave a phantom hit behind."""
        service = CompileService()
        chain = small_bmm()
        request = CompileRequest(chain, HW)
        service.serve(request)  # cold compile populates the cache
        # Corrupt the cached entry in a way PlanCache's shape validation
        # accepts but plan decoding rejects.
        entry, _ = service.cache.get_with_tier(request.key)
        broken = dict(entry)
        broken["fused_plan"] = {"not": "a plan"}
        service.cache.put(request.key, broken)
        service.metrics.reset()

        served = service.serve(request)
        assert served.ok
        assert served.source == SOURCE_COMPILED
        stats = service.stats()
        assert stats["requests"] == 1
        assert stats["misses"] == 1
        assert stats["hits"] == 0  # the bogus hit was retracted
        assert stats["corrupt_entries"] == 1
        assert (
            stats["requests"]
            == stats["hits"] + stats["misses"] + stats["coalesced"]
        )

    def test_coalesced_error_propagates(self, monkeypatch):
        def always_boom(chain, hardware, config=None, **kwargs):
            time.sleep(0.05)
            raise RuntimeError("boom")

        monkeypatch.setattr(
            "repro.service.service.pipeline.compile_chain", always_boom
        )
        service = CompileService(fallback=False, retries=0)
        chain = small_bmm()
        results = []

        def worker():
            results.append(service.serve(CompileRequest(chain, HW)))

        threads = [threading.Thread(target=worker) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(not served.ok for served in results)
        assert all("boom" in served.error for served in results)


# ----------------------------------------------------------------------
# batch compilation
# ----------------------------------------------------------------------
class TestBatch:
    def distinct_chains(self, n):
        return [
            batch_gemm_chain(1, 32 + 8 * i, 16, 16, 32, name=f"batch_c{i}")
            for i in range(n)
        ]

    def test_eight_chains_with_injected_failure(self, monkeypatch):
        """One failing request degrades to fallback; the batch survives."""
        original = ChimeraOptimizer.optimize

        def flaky(self, chain, **kwargs):
            if chain.name == "batch_c3":
                raise RuntimeError("injected failure for batch_c3")
            return original(self, chain, **kwargs)

        monkeypatch.setattr(ChimeraOptimizer, "optimize", flaky)
        service = CompileService()
        chains = self.distinct_chains(8)
        report = service.compile_batch(
            [(chain, HW) for chain in chains], max_workers=4
        )
        assert len(report.items) == 8
        assert report.succeeded and report.failed == 0
        by_name = {item.chain: item for item in report.items}
        assert by_name["batch_c3"].status == "fallback"
        assert not by_name["batch_c3"].served.result.fused
        others = [i for i in report.items if i.chain != "batch_c3"]
        assert all(item.status == "ok" for item in others)
        stats = service.stats()
        assert stats["misses"] == 8
        assert stats["compiles"] == 7
        assert stats["fallbacks"] == 1
        assert stats["failures"] == 2  # first try + one retry on batch_c3
        assert stats["hits"] == 0

    def test_warm_batch_is_all_hits(self):
        service = CompileService()
        requests = [(chain, HW) for chain in self.distinct_chains(4)]
        service.compile_batch(requests, max_workers=2)
        report = service.compile_batch(requests, max_workers=2)
        assert {item.source for item in report.items} == {SOURCE_MEMORY}
        assert service.stats()["hits_memory"] == 4

    def test_duplicate_requests_share_one_compile(self):
        service = CompileService()
        chain = small_bmm()
        report = service.compile_batch([(chain, HW)] * 4, max_workers=4)
        assert report.succeeded
        assert service.stats()["compiles"] == 1

    def test_per_request_timeout(self, monkeypatch):
        from repro.runtime import pipeline

        original = pipeline.compile_chain

        def slow_compile(chain, hardware, config=None, **kwargs):
            if chain.name == "batch_c1":
                time.sleep(1.0)
            return original(chain, hardware, config, **kwargs)

        monkeypatch.setattr(
            "repro.service.service.pipeline.compile_chain", slow_compile
        )
        service = CompileService()
        chains = self.distinct_chains(2)
        report = service.compile_batch(
            [(chain, HW) for chain in chains],
            max_workers=2,
            timeout=0.6,
        )
        by_name = {item.chain: item for item in report.items}
        assert by_name["batch_c0"].status == "ok"
        assert by_name["batch_c1"].status == "timeout"
        assert not report.succeeded
        assert service.stats()["timeouts"] == 1

    def test_empty_batch(self):
        report = CompileService().compile_batch([])
        assert report.items == () and report.succeeded

    def test_report_table_renders(self):
        service = CompileService()
        report = service.compile_batch([(small_bmm(), HW)])
        table = report.table()
        assert "status" in table and "1 requests" in table

    def test_module_level_compile_batch(self):
        service = CompileService()
        report = compile_batch(service, [(small_bmm(), HW)], max_workers=1)
        assert report.succeeded


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_percentiles(self):
        samples = [float(i) for i in range(1, 101)]
        assert percentile(samples, 50) == 50.0
        assert percentile(samples, 90) == 90.0
        assert percentile(samples, 99) == 99.0
        assert percentile([], 50) == 0.0

    def test_snapshot_shape(self):
        metrics = ServiceMetrics()
        metrics.count("hits_memory")
        metrics.count("misses")
        metrics.observe_compile(0.5)
        snap = metrics.snapshot()
        assert snap["hits"] == 1 and snap["hit_rate"] == 0.5
        assert snap["compile_latency"]["count"] == 1
        assert snap["compile_latency"]["p99"] == 0.5

    def test_stats_include_cache_occupancy(self, tmp_path):
        service = CompileService(cache_dir=tmp_path, memory_capacity=16)
        service.compile(small_bmm(), HW)
        cache_stats = service.stats()["cache"]
        assert cache_stats["memory_entries"] == 1
        assert cache_stats["disk_entries"] == 1
        assert cache_stats["disk_bytes"] > 0
        assert cache_stats["memory_capacity"] == 16
        assert cache_stats["cache_dir"] == str(tmp_path)

    def test_latency_percentiles_from_service(self):
        service = CompileService()
        for i in range(3):
            service.compile(small_bmm(name=f"lat_{i}"), HW)
        latency = service.stats()["compile_latency"]
        assert latency["count"] == 3
        assert 0 < latency["p50"] <= latency["p99"] <= latency["max"]

    def test_stats_include_search_counters(self):
        from repro.core.search import reset_search_stats

        reset_search_stats()
        service = CompileService()
        service.compile(small_bmm(name="search_stats_probe"), HW)
        search = service.stats()["search"]
        assert search["searches"] > 0
        assert search["orders_enumerated"] > 0
        assert search["solves"] + search["memo_hits"] > 0
        assert "memo" in search

    def test_configurable_window_caps_samples(self):
        metrics = ServiceMetrics(window=4)
        for i in range(10):
            metrics.observe("probe", float(i))
        summary = metrics.snapshot()["latencies"]["probe"]
        assert summary["count"] == 4
        # only the newest window of samples survives
        assert summary["p50"] >= 6.0
        with pytest.raises(ValueError):
            ServiceMetrics(window=0)

    def test_snapshot_reports_window_and_p95(self):
        metrics = ServiceMetrics(window=2048)
        metrics.observe_compile(1.0)
        snap = metrics.snapshot()
        assert snap["latency_window"] == 2048
        assert "p95" in snap["compile_latency"]

    def test_named_latency_series(self):
        metrics = ServiceMetrics()
        metrics.observe("serve_warm", 0.001)
        metrics.observe("serve_cold", 1.0)
        latencies = metrics.snapshot()["latencies"]
        assert latencies["serve_warm"]["count"] == 1
        assert latencies["serve_cold"]["p99"] == 1.0

    def test_restore_reloads_counters(self):
        metrics = ServiceMetrics()
        metrics.count("requests")
        metrics.count("hits_memory")
        saved = metrics.snapshot()

        fresh = ServiceMetrics()
        fresh.restore(saved)
        snap = fresh.snapshot()
        assert snap["requests"] == 1
        assert snap["hits_memory"] == 1
        assert snap["hits"] == 1  # derived, recomputed not restored


# ----------------------------------------------------------------------
# serve_raw: the remote-serving hot path
# ----------------------------------------------------------------------
class TestServeRaw:
    def test_raw_entry_round_trips_through_decode(self):
        from repro.service import decode_plan_entry

        service = CompileService()
        chain = small_bmm()
        cold = service.serve_raw(CompileRequest(chain, HW))
        assert cold.ok and cold.source == SOURCE_COMPILED
        warm = service.serve_raw(CompileRequest(chain, HW))
        assert warm.from_cache and warm.source == SOURCE_MEMORY
        result = decode_plan_entry(warm.entry, HW)
        direct = service.compile(chain, HW)
        assert result.fused == direct.fused
        assert result.predicted_time == pytest.approx(direct.predicted_time)

    def test_warm_raw_skips_kernel_lowering(self, monkeypatch):
        service = CompileService()
        chain = small_bmm()
        service.serve_raw(CompileRequest(chain, HW))

        def boom(entry, hardware):
            raise AssertionError("decode ran on the raw warm path")

        monkeypatch.setattr(
            type(service), "_decode_entry", staticmethod(boom)
        )
        warm = service.serve_raw(CompileRequest(chain, HW))
        assert warm.from_cache

    def test_serve_and_serve_raw_share_inflight_table(self):
        service = CompileService()
        chain = small_bmm()
        release = threading.Event()
        original = service._compile_with_recovery

        def slow(request, key):
            release.wait(timeout=30)
            return original(request, key)

        service._compile_with_recovery = slow
        results = {}

        def raw_leader():
            results["raw"] = service.serve_raw(CompileRequest(chain, HW))

        leader = threading.Thread(target=raw_leader)
        leader.start()
        time.sleep(0.05)
        follower = threading.Thread(
            target=lambda: results.update(
                decoded=service.serve(CompileRequest(chain, HW))
            )
        )
        follower.start()
        time.sleep(0.05)
        release.set()
        leader.join(timeout=60)
        follower.join(timeout=60)
        assert results["raw"].ok and results["decoded"].ok
        snap = service.metrics.snapshot()
        assert snap["coalesced"] == 1
        assert snap["compiles"] == 1
        assert snap["requests"] == (
            snap["hits"] + snap["misses"] + snap["coalesced"]
        )

    def test_failed_raw_compile_reports_error(self):
        service = CompileService(retries=0, fallback=False)

        def fail(request, key):
            return None, SOURCE_FALLBACK, "RuntimeError: injected", "cold"

        service._compile_with_recovery = fail
        served = service.serve_raw(CompileRequest(small_bmm(), HW))
        assert not served.ok
        assert "injected" in served.error


# ----------------------------------------------------------------------
# shape index + warm-started near misses
# ----------------------------------------------------------------------
class TestWarmStartService:
    def base_chain(self):
        return batch_gemm_chain(2, 64, 32, 32, 64, name="warm_base")

    def near_chain(self):
        return batch_gemm_chain(2, 72, 32, 40, 64, name="warm_near")

    def test_near_miss_is_labeled_and_counted(self):
        from repro.service import WARM_COLD, WARM_EXACT, WARM_NEAR

        service = CompileService(warm_start=True)
        cold = service.serve(CompileRequest(self.base_chain(), HW))
        assert cold.warm_start == WARM_COLD
        near = service.serve(CompileRequest(self.near_chain(), HW))
        assert near.source == SOURCE_COMPILED
        assert near.warm_start == WARM_NEAR
        exact = service.serve(CompileRequest(self.near_chain(), HW))
        assert exact.source == SOURCE_MEMORY
        assert exact.warm_start == WARM_EXACT
        stats = service.stats()
        assert stats["warm_near"] == 1
        assert stats["shape_index"]["entries"] == 2
        assert stats["shape_index"]["structures"] == 1
        assert stats["shape_index"]["enabled"] is True

    def test_disabled_warm_start_still_records_index(self):
        from repro.service import WARM_COLD

        service = CompileService(warm_start=False)
        service.serve(CompileRequest(self.base_chain(), HW))
        near = service.serve(CompileRequest(self.near_chain(), HW))
        assert near.warm_start == WARM_COLD
        stats = service.stats()
        assert stats.get("warm_near", 0) == 0
        # Recording continues so flipping the knob on later has history.
        assert stats["shape_index"]["entries"] == 2
        assert stats["shape_index"]["enabled"] is False

    def test_env_knob_disables_warm_start(self, monkeypatch):
        from repro.service import ENV_WARM_START, WARM_COLD

        monkeypatch.setenv(ENV_WARM_START, "0")
        service = CompileService()
        assert service.warm_start is False
        service.serve(CompileRequest(self.base_chain(), HW))
        near = service.serve(CompileRequest(self.near_chain(), HW))
        assert near.warm_start == WARM_COLD

    def test_index_persists_across_service_restart(self, tmp_path):
        from repro.service import WARM_NEAR

        first = CompileService(cache_dir=tmp_path, warm_start=True)
        first.serve(CompileRequest(self.base_chain(), HW))
        assert (tmp_path / "shape-index.jsonl").exists()

        second = CompileService(cache_dir=tmp_path, warm_start=True)
        assert len(second.shape_index) == 1
        near = second.serve(CompileRequest(self.near_chain(), HW))
        assert near.warm_start == WARM_NEAR

    def test_near_plan_matches_cold_plan(self):
        warm = CompileService(warm_start=True)
        warm.serve(CompileRequest(self.base_chain(), HW))
        near = warm.serve(CompileRequest(self.near_chain(), HW))
        cold = CompileService(warm_start=False).serve(
            CompileRequest(self.near_chain(), HW)
        )

        def canonical(served):
            from repro.runtime.serialization import plan_to_dict

            decision = served.result.decision
            return json.dumps(
                {
                    "use_fusion": decision.use_fusion,
                    "fused": plan_to_dict(decision.fused_plan),
                    "unfused": [
                        plan_to_dict(p) for p in decision.unfused_plans
                    ],
                },
                sort_keys=True,
            )

        assert canonical(near) == canonical(cold)

    def test_full_clear_drops_index(self, tmp_path):
        service = CompileService(cache_dir=tmp_path, warm_start=True)
        service.serve(CompileRequest(self.base_chain(), HW))
        assert len(service.shape_index) == 1
        service.clear_cache()
        assert len(service.shape_index) == 0
        assert not (tmp_path / "shape-index.jsonl").exists()
        # Memory-only clears keep the index: disk entries still back it.
        service.serve(CompileRequest(self.base_chain(), HW))
        service.clear_cache(memory_only=True)
        assert len(service.shape_index) == 1

    def test_raw_path_reports_warm_labels(self):
        from repro.service import WARM_EXACT, WARM_NEAR

        service = CompileService(warm_start=True)
        service.serve_raw(CompileRequest(self.base_chain(), HW))
        near = service.serve_raw(CompileRequest(self.near_chain(), HW))
        assert near.warm_start == WARM_NEAR
        exact = service.serve_raw(CompileRequest(self.near_chain(), HW))
        assert exact.warm_start == WARM_EXACT

    def test_different_structure_never_hints(self):
        from repro.service import WARM_COLD

        service = CompileService(warm_start=True)
        service.serve(CompileRequest(self.base_chain(), HW))
        other = service.serve(CompileRequest(small_conv(), HW))
        assert other.warm_start == WARM_COLD
