"""Tests for block-to-core partitioning (``repro.core.multicore``).

The contract under test, in the order the module builds it up:

* candidate enumeration (``partition_factors`` / ``REPRO_CORES``) is
  inert without an inter-core link;
* ``partition_loops`` admits only spatial, write-covering loops;
* ``shard_chain`` rewrites extents/flops/shapes proportionally and
  leaves replicated tensors untouched;
* the communication model is exact integer arithmetic, bit-identical
  between the scalar and tables engines;
* the placement lower bound is admissible (never above the solved
  plan's predicted time);
* ``decide_fusion`` picks a partitioned plan only on link-bearing
  hardware and only when strictly faster — linkless plans stay
  byte-identical, ``REPRO_CORES`` set or not;
* partitions, links and schedule transients survive serialization
  (format v5) and the scheduler charges staging bytes correctly.
"""

import dataclasses
import json

import pytest

from repro.core.fusion import decide_fusion
from repro.core.multicore import (
    ENV_CORES,
    best_partitioned_plan,
    comm_steps,
    comm_volume_bytes,
    forced_partitions,
    partition_factors,
    partition_loops,
    partition_lower_bound,
    shard_chain,
    shard_extent,
)
from repro.core.optimizer import ChimeraOptimizer
from repro.core.plan import CorePartition
from repro.hardware import (
    InterCoreLink,
    a100,
    a100_nvlinked_sms,
    ascend_910_cluster,
    mesh_npu_16,
    xeon_gold_6240,
)
from repro.ir.chains import (
    attention_chain,
    batch_gemm_chain,
    conv_chain,
    mlp_chain,
)
from repro.runtime.serialization import (
    hardware_from_dict,
    hardware_to_dict,
    plan_from_dict,
    plan_to_dict,
)


@pytest.fixture(autouse=True)
def _unforced_cores(monkeypatch):
    """These tests pin default enumeration; forcing is set per-test."""
    monkeypatch.delenv(ENV_CORES, raising=False)


def small_attention():
    return batch_gemm_chain(8, 256, 64, 64, 256, with_softmax=True)


class TestPartitionFactors:
    def test_no_link_is_single_core(self):
        assert partition_factors(xeon_gold_6240()) == (1,)
        assert partition_factors(a100()) == (1,)

    def test_no_link_ignores_forced_cores(self, monkeypatch):
        monkeypatch.setenv(ENV_CORES, "8")
        assert partition_factors(a100()) == (1,)

    def test_powers_of_two_up_to_chip(self):
        assert partition_factors(mesh_npu_16()) == (1, 2, 4, 8, 16)
        # 108 SMs: powers of two plus the full chip.
        factors = partition_factors(a100_nvlinked_sms())
        assert factors[-1] == 108
        assert factors[:-1] == (1, 2, 4, 8, 16, 32, 64)

    def test_forced_cores_with_link(self, monkeypatch):
        monkeypatch.setenv(ENV_CORES, "4")
        assert partition_factors(mesh_npu_16()) == (4,)
        monkeypatch.setenv(ENV_CORES, "64")  # clamped to the chip
        assert partition_factors(mesh_npu_16()) == (16,)

    def test_forced_cores_validation(self, monkeypatch):
        monkeypatch.setenv(ENV_CORES, "three")
        with pytest.raises(ValueError, match="integer"):
            forced_partitions()
        monkeypatch.setenv(ENV_CORES, "0")
        with pytest.raises(ValueError, match=">= 1"):
            forced_partitions()
        monkeypatch.setenv(ENV_CORES, "")
        assert forced_partitions() is None


class TestPartitionLoops:
    def test_attention_batch_is_partitionable(self):
        loops = partition_loops(small_attention())
        assert "b" in loops
        # Reductions (k, l) can never shard without a cross-core reduce.
        assert "k" not in loops and "l" not in loops

    def test_write_coverage_required(self):
        # In an MLP chain, ``m`` indexes every write; ``n`` misses the
        # first GEMM's output H[m, h] but that op doesn't own ``n``, so
        # both qualify.  The reduction ``h``/``k`` never do.
        loops = partition_loops(mlp_chain(256, 128, 512, 128))
        assert "m" in loops
        assert "h" not in loops and "k" not in loops

    def test_unit_extents_excluded(self):
        chain = batch_gemm_chain(1, 128, 64, 64, 128)
        assert "b" not in partition_loops(chain)


class TestShardChain:
    def test_shard_extent_is_ceil_div(self):
        assert shard_extent(16, 4) == 4
        assert shard_extent(17, 4) == 5
        assert shard_extent(3, 8) == 1

    def test_shard_rewrites_extents_and_flops(self):
        chain = small_attention()
        shard = shard_chain(chain, "b", 4)
        assert shard.name == f"{chain.name}@p4"
        assert shard.loop_extents()["b"] == 2
        assert shard.total_flops() * 4 == chain.total_flops()
        # Tensors indexed by b shrink proportionally; dims not touched
        # by b are unchanged.
        assert shard.tensors["A"].shape[0] == 2
        assert shard.tensors["A"].shape[1:] == chain.tensors["A"].shape[1:]

    def test_replicated_tensors_untouched(self):
        chain = mlp_chain(256, 128, 512, 128)
        shard = shard_chain(chain, "m", 4)
        assert shard.tensors["W1"].shape == chain.tensors["W1"].shape
        assert shard.tensors["W2"].shape == chain.tensors["W2"].shape
        assert shard.tensors["X"].shape[0] == 64

    def test_degenerate_split_returns_chain_unchanged(self):
        chain = small_attention()
        assert shard_chain(chain, "b", 1) is chain

    def test_validation(self):
        chain = small_attention()
        with pytest.raises(ValueError, match="cores"):
            shard_chain(chain, "b", 0)
        with pytest.raises(KeyError, match="no loop"):
            shard_chain(chain, "zz", 2)


class TestCommVolume:
    FACTORS = (1, 2, 4, 8, 16, 32)

    def workloads(self):
        return [
            (small_attention(), "b"),
            (mlp_chain(256, 128, 512, 128), "m"),
            (batch_gemm_chain(4, 96, 48, 48, 96, with_softmax=True), "b"),
            (conv_chain(1, 16, 28, 28, 24, 16, 1, 1, 3, 1), "x"),
        ]

    def test_single_core_is_free(self):
        for chain, loop in self.workloads():
            if loop not in chain.loop_extents():
                continue
            assert comm_volume_bytes(chain, loop, (1,))[0] == 0

    def test_scalar_and_tables_bit_exact(self):
        for chain, loop in self.workloads():
            if loop not in chain.loop_extents():
                continue
            scalar = comm_volume_bytes(
                chain, loop, self.FACTORS, engine="scalar"
            )
            tables = comm_volume_bytes(
                chain, loop, self.FACTORS, engine="tables"
            )
            assert scalar == tables, (chain.name, loop)

    def test_replicated_weights_broadcast(self):
        # MLP sharded along m replicates W1 and W2: (p-1) * their bytes.
        chain = mlp_chain(256, 128, 512, 128)
        weights = (
            chain.tensors["W1"].nbytes + chain.tensors["W2"].nbytes
        )
        one, two, four = comm_volume_bytes(chain, "m", (1, 2, 4))
        assert one == 0
        assert two == weights
        assert four == 3 * weights

    def test_fully_sharded_chain_is_free(self):
        # Every tensor of a batch GEMM chain carries b: no replication,
        # no gather, no halo — partitioning along b moves zero bytes.
        chain = small_attention()
        assert set(comm_volume_bytes(chain, "b", (2, 4, 8))) == {0}

    def test_comm_steps_topologies(self):
        chain = mlp_chain(256, 128, 512, 128)
        volume = comm_volume_bytes(chain, "m", (4,))[0]
        assert volume > 0
        ring = ascend_910_cluster()
        mesh = mesh_npu_16()
        direct = a100_nvlinked_sms()
        # One broadcast phase times the topology's collective steps.
        assert comm_steps(chain, "m", ring, 4, volume) == 3
        assert comm_steps(chain, "m", mesh, 4, volume) == 2
        assert comm_steps(chain, "m", direct, 4, volume) == 1
        assert comm_steps(chain, "m", mesh, 1, 0) == 0

    def test_halo_overlap_on_sliding_windows(self):
        # A 3x3 second conv re-reads a one-pixel halo of the sharded
        # intermediate from the neighboring core.
        chain = conv_chain(1, 16, 28, 28, 24, 16, 1, 1, 3, 1)
        loops = partition_loops(chain)
        spatial = [l for l in loops if l in ("oh", "ow")]
        assert spatial, f"no spatial loop in {loops}"
        volumes = comm_volume_bytes(chain, spatial[0], (2, 4))
        assert volumes[0] > 0
        assert volumes[1] > volumes[0]


class TestPlacementSearch:
    def test_lower_bound_is_admissible(self):
        hw = mesh_npu_16()
        chain = small_attention()
        optimizer = ChimeraOptimizer(hw)
        link = hw.link
        for p in (2, 4, 8):
            volume = comm_volume_bytes(chain, "b", (p,))[0]
            steps = comm_steps(chain, "b", hw, p, volume)
            comm_time = volume / link.bandwidth + steps * link.step_time()
            shard = shard_chain(chain, "b", p)
            bound = partition_lower_bound(shard, hw, p, comm_time)
            plan = optimizer.optimize(shard, partitions=p)
            extents = chain.loop_extents()
            plan = dataclasses.replace(
                plan,
                partition=CorePartition(
                    cores=p,
                    loop="b",
                    full_extent=extents["b"],
                    shard_extent=shard_extent(extents["b"], p),
                    comm_bytes=int(volume),
                    comm_steps=steps,
                ),
            )
            assert bound <= plan.predicted_time + 1e-12

    def test_no_link_returns_none(self):
        assert best_partitioned_plan(small_attention(), a100()) is None

    def test_beaten_incumbent_returns_none(self):
        # An already-instant incumbent can't be beaten by any placement.
        plan = best_partitioned_plan(
            small_attention(), mesh_npu_16(), incumbent_time=0.0
        )
        assert plan is None

    def test_decide_fusion_partitions_attention_on_mesh(self):
        hw = mesh_npu_16()
        chain = small_attention()
        decision = decide_fusion(chain, hw)
        part = decision.fused_plan.partition
        assert decision.use_fusion
        assert part is not None
        assert part.cores > 1
        assert part.loop == "b"
        assert part.full_extent == 8
        assert part.shard_extent == shard_extent(8, part.cores)
        assert any("partitioned over" in n for n in decision.fused_plan.notes)
        # The partitioned fused plan beats the aggregate fused plan.
        aggregate = ChimeraOptimizer(hw).optimize(chain)
        assert decision.fused_time < aggregate.predicted_time

    def test_partitioned_plan_prices_comm_time(self):
        hw = ascend_910_cluster()
        chain = mlp_chain(256, 128, 512, 128)
        plan = best_partitioned_plan(chain, hw)
        if plan is None:
            pytest.skip("no placement beats the aggregate on this shape")
        assert plan.comm_time > 0
        assert plan.partition.comm_bytes > 0

    def test_unpartitioned_plan_has_zero_comm_time(self):
        plan = ChimeraOptimizer(xeon_gold_6240()).optimize(
            mlp_chain(256, 128, 512, 128)
        )
        assert plan.partition is None
        assert plan.comm_time == 0.0


class TestByteIdentity:
    """No link (or no win) ⇒ plans identical to the pre-multicore model."""

    def canonical(self, decision):
        return json.dumps(
            {
                "use_fusion": decision.use_fusion,
                "fused": plan_to_dict(decision.fused_plan),
                "unfused": [
                    plan_to_dict(p) for p in decision.unfused_plans
                ],
            },
            sort_keys=True,
        )

    @pytest.mark.parametrize(
        "hw", [xeon_gold_6240(), a100()], ids=lambda h: h.name
    )
    def test_forced_cores_inert_without_link(self, hw, monkeypatch):
        chain = small_attention()
        monkeypatch.delenv(ENV_CORES, raising=False)
        baseline = self.canonical(decide_fusion(chain, hw))
        monkeypatch.setenv(ENV_CORES, "8")
        forced = self.canonical(decide_fusion(chain, hw))
        assert forced == baseline

    def test_linked_preset_without_win_keeps_aggregate_plan(self):
        # When no placement beats the aggregate, decide_fusion on the
        # linked preset returns the plain optimizer plan untouched.
        chain = batch_gemm_chain(1, 64, 32, 32, 64)
        hw = a100_nvlinked_sms()
        base = ChimeraOptimizer(hw).optimize(chain)
        linked = decide_fusion(chain, hw).fused_plan
        if linked.partition is not None:
            pytest.skip("placement won; identity doesn't apply")
        assert json.dumps(plan_to_dict(linked), sort_keys=True) == (
            json.dumps(plan_to_dict(base), sort_keys=True)
        )


class TestSerializationV5:
    def test_hardware_link_round_trip(self):
        for hw in (mesh_npu_16(), a100_nvlinked_sms(), xeon_gold_6240()):
            restored = hardware_from_dict(hardware_to_dict(hw))
            assert restored == hw
        assert hardware_from_dict(hardware_to_dict(a100())).link is None

    def test_partitioned_plan_round_trip(self):
        hw = mesh_npu_16()
        decision = decide_fusion(small_attention(), hw)
        plan = decision.fused_plan
        assert plan.partition is not None
        restored = plan_from_dict(plan_to_dict(plan))
        assert restored.partition == plan.partition
        assert plan_to_dict(restored) == plan_to_dict(plan)

    def test_core_partition_validation(self):
        with pytest.raises(ValueError):
            CorePartition(
                cores=0, loop="b", full_extent=8, shard_extent=8,
                comm_bytes=0, comm_steps=0,
            )
        with pytest.raises(ValueError):
            CorePartition(
                cores=4, loop="b", full_extent=8, shard_extent=2,
                comm_bytes=-1, comm_steps=0,
            )


class TestSchedulerTransients:
    def _packed_partition(self):
        from repro.ir.graph import partition_graph
        from repro.workloads import build_multibranch_network, pack_networks

        wide = build_multibranch_network(
            branches=2, seq=32, width=64, reduce_dim=16
        )
        packed = pack_networks([wide] * 2, name="wide-x2")
        return packed, partition_graph(packed)

    def test_transients_raise_live_profile(self):
        from repro.runtime.scheduler import schedule_partition
        from repro.sim.residency import replay_schedule

        packed, partition = self._packed_partition()
        hw = mesh_npu_16()
        dag_order = [n.name for n in packed.nodes]
        plain = schedule_partition(partition, hw, dag_order=dag_order)
        # Two tenants' copies of the same node both stage comm buffers —
        # the residency accounting must charge each at its own step.
        staging = {"t0.stem": 1 << 20, "t1.stem": 1 << 20}
        staged = schedule_partition(
            partition, hw, dag_order=dag_order, node_transients=staging
        )
        assert staged.transients == (
            ("t0.stem", 1 << 20), ("t1.stem", 1 << 20),
        )
        for name, nbytes in staging.items():
            step = staged.position(name)
            assert staged.live_bytes[step] >= nbytes
        assert staged.peak_bytes >= plain.peak_bytes
        # The replay measures exactly the predicted profile, staging in.
        trace = replay_schedule(staged)
        assert trace.live_bytes == staged.live_bytes
        assert trace.peak_bytes == staged.peak_bytes

    def test_zero_and_unknown_transients_filtered(self):
        from repro.runtime.scheduler import schedule_partition

        packed, partition = self._packed_partition()
        hw = xeon_gold_6240()
        schedule = schedule_partition(
            partition,
            hw,
            dag_order=[n.name for n in packed.nodes],
            node_transients={"t0.stem": 0, "no-such-node": 512},
        )
        assert schedule.transients == ()

    def test_replay_rejects_transient_for_missing_node(self):
        from repro.runtime.scheduler import schedule_partition
        from repro.sim.residency import ScheduleReplayError, replay_schedule

        packed, partition = self._packed_partition()
        schedule = schedule_partition(
            partition,
            xeon_gold_6240(),
            dag_order=[n.name for n in packed.nodes],
        )
        corrupt = dataclasses.replace(
            schedule, transients=(("ghost", 1024),)
        )
        with pytest.raises(ScheduleReplayError, match="ghost"):
            replay_schedule(corrupt)


class TestReporting:
    def test_network_plan_table_has_cores_column(self):
        from repro.analysis.reporting import network_plan_table
        from repro.runtime.network import compile_network
        from repro.workloads import build_multibranch_network

        dag = build_multibranch_network(
            branches=2, seq=32, width=64, reduce_dim=16
        )
        plan = compile_network(dag, xeon_gold_6240())
        table = network_plan_table(plan)
        assert "cores" in table.splitlines()[0]
        assert all(node.cores == 1 for node in plan.nodes)
