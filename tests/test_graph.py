"""Tests for compute DAGs."""

import pytest

from repro.ir import builders
from repro.ir.chains import batch_gemm_chain
from repro.ir.graph import ComputeDAG, GraphBuilder, GraphNode


class TestGraphBuilder:
    def test_add_ops_and_chains(self):
        builder = GraphBuilder("net")
        op, tensors = builders.gemm("proj", 64, 64, 64)
        a = builder.add_op(op, tensors, repeat=3)
        chain = batch_gemm_chain(2, 64, 32, 32, 64)
        b = builder.add_chain(chain, deps=[a])
        dag = builder.build()
        assert dag.node(a).repeat == 3
        assert dag.node(b).deps == (a,)
        assert len(dag.nodes) == 2

    def test_total_flops_scales_with_repeat(self):
        builder = GraphBuilder("net")
        op, tensors = builders.gemm("proj", 64, 64, 64)
        builder.add_op(op, tensors, repeat=5)
        dag = builder.build()
        assert dag.total_flops() == 5 * op.flops

    def test_unknown_node_raises(self):
        dag = GraphBuilder("net").build()
        with pytest.raises(KeyError):
            dag.node("missing")


class TestValidation:
    def test_forward_dependency_rejected(self):
        chain = batch_gemm_chain(1, 16, 16, 16, 16)
        node_a = GraphNode("a", chain, deps=("b",))
        node_b = GraphNode("b", chain)
        with pytest.raises(ValueError, match="precede"):
            ComputeDAG("bad", (node_a, node_b))

    def test_duplicate_names_rejected(self):
        chain = batch_gemm_chain(1, 16, 16, 16, 16)
        with pytest.raises(ValueError, match="duplicate"):
            ComputeDAG("bad", (GraphNode("x", chain), GraphNode("x", chain)))

    def test_bad_repeat_rejected(self):
        chain = batch_gemm_chain(1, 16, 16, 16, 16)
        with pytest.raises(ValueError, match="repeat"):
            GraphNode("x", chain, repeat=0)
