"""Setuptools shim.

The execution environment has no ``wheel`` package, so PEP 660 editable
installs fail; this shim lets ``pip install -e . --no-build-isolation
--no-use-pep517`` take the legacy ``setup.py develop`` path.  All metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
