"""Multi-core scale-out: fusion across cores vs. per-core-unfused.

The block-to-core partitioning axis (:mod:`repro.core.multicore`) shards
a fused chain over ``p`` cores and prices the inter-core traffic with the
preset's :class:`repro.hardware.InterCoreLink`.  The crossover this
benchmark demonstrates: on movement-bound chains (attention batch GEMMs,
where DV at the shared boundary scales like ``1/sqrt(capacity)``),
fusing *across* cores — each core owning a shard of the batch, link
traffic priced in — beats running the per-core-unfused kernels, while
compute-bound FFN chains correctly keep the aggregate plan.

Gates (written to ``BENCH_multicore.json`` via the shared artifact
envelope):

* at least one (multi-core preset, workload) pair chooses a fused plan
  that is partitioned across cores;
* on at least one preset, that fused-across-cores plan is modeled at
  ``>= MIN_CROSSOVER``x over the per-core-unfused alternative;
* the scalar and tables engines agree **bit-exactly** on the
  communication volumes for every (loop, partition count) of every
  workload;
* the full fuse-or-not decision (partition search included) serializes
  byte-identically under ``REPRO_MODEL_ENGINE=scalar`` and ``=tables``
  on a link-bearing preset.

Run standalone with ``python benchmarks/bench_multicore.py [--smoke]``;
smoke shrinks the shapes but enforces the same gates.
"""

import argparse
import json
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from artifact import assert_gates, gate, write_artifact
from repro.analysis import render_table
from repro.core.fusion import decide_fusion
from repro.core.multicore import (
    comm_volume_bytes,
    partition_factors,
    partition_loops,
)
from repro.core.search import reset_search_stats, solve_memo
from repro.core.tables import clear_tables_memo
from repro.hardware import multicore_presets
from repro.ir.chains import batch_gemm_chain, mlp_chain
from repro.runtime.serialization import plan_to_dict

#: Modeled end-to-end win required of fused-across-cores on >= 1 preset.
MIN_CROSSOVER = 2.0

#: The preset the byte-identity cross-engine gate runs on.
IDENTITY_PRESET = "mesh-npu-16"


def _workloads(smoke):
    """Crossover pair: movement-bound attention, compute-bound FFN."""
    if smoke:
        return {
            "attention": batch_gemm_chain(
                8, 512, 64, 64, 512, with_softmax=True
            ),
            "ffn": mlp_chain(512, 1024, 4096, 1024),
        }
    return {
        "attention": batch_gemm_chain(
            8, 1024, 64, 64, 1024, with_softmax=True
        ),
        "ffn": mlp_chain(2048, 1024, 4096, 1024),
    }


def _clear_memos():
    solve_memo().clear()
    reset_search_stats()
    clear_tables_memo()


def _describe_partition(plan):
    part = plan.partition
    if part is None:
        return "-"
    return f"p{part.cores}@{part.loop}"


def _comm_bit_exact(chain, hw):
    """Scalar vs. tables communication volumes over every placement."""
    factors = partition_factors(hw)
    checked = 0
    for loop in partition_loops(chain):
        scalar = comm_volume_bytes(chain, loop, factors, engine="scalar")
        tables = comm_volume_bytes(chain, loop, factors, engine="tables")
        if scalar != tables:
            return False, (
                f"loop {loop!r}: scalar {scalar} != tables {tables}"
            )
        checked += len(factors)
    return True, f"{checked} (loop, p) volumes identical"


def _decision_bytes(chain, hw, engine):
    """Serialize a full decide_fusion outcome under one engine."""
    previous = os.environ.get("REPRO_MODEL_ENGINE")
    os.environ["REPRO_MODEL_ENGINE"] = engine
    try:
        _clear_memos()
        decision = decide_fusion(chain, hw)
    finally:
        if previous is None:
            del os.environ["REPRO_MODEL_ENGINE"]
        else:
            os.environ["REPRO_MODEL_ENGINE"] = previous
    return json.dumps(
        {
            "use_fusion": decision.use_fusion,
            "fused": plan_to_dict(decision.fused_plan),
            "unfused": [plan_to_dict(p) for p in decision.unfused_plans],
        },
        sort_keys=True,
    )


def run_multicore_experiment(smoke=False):
    """Sweep workloads across the multi-core presets, collect evidence."""
    workloads = _workloads(smoke)
    presets = multicore_presets()
    results = []
    rows = []
    for hw in presets:
        for label, chain in workloads.items():
            _clear_memos()
            started = time.perf_counter()
            decision = decide_fusion(chain, hw)
            elapsed = time.perf_counter() - started
            part = decision.fused_plan.partition
            entry = {
                "preset": hw.name,
                "workload": label,
                "chain": chain.name,
                "use_fusion": decision.use_fusion,
                "partitioned": part is not None,
                "cores": 1 if part is None else part.cores,
                "partition_loop": None if part is None else part.loop,
                "comm_bytes": 0 if part is None else part.comm_bytes,
                "comm_steps": 0 if part is None else part.comm_steps,
                "fused_time_s": decision.fused_time,
                "unfused_time_s": decision.unfused_time,
                "speedup_vs_unfused": decision.predicted_speedup,
                "compile_seconds": elapsed,
            }
            results.append(entry)
            rows.append([
                hw.name,
                label,
                "fuse" if decision.use_fusion else "split",
                _describe_partition(decision.fused_plan),
                f"{decision.fused_time * 1e6:.1f} us",
                f"{decision.unfused_time * 1e6:.1f} us",
                f"{decision.predicted_speedup:.2f}x",
            ])

    crossover = [
        r for r in results
        if r["use_fusion"] and r["partitioned"]
    ]
    best = max(
        crossover,
        key=lambda r: r["speedup_vs_unfused"],
        default=None,
    )

    comm_ok = True
    comm_details = []
    identity_hw = next(h for h in presets if h.name == IDENTITY_PRESET)
    for label, chain in workloads.items():
        ok, detail = _comm_bit_exact(chain, identity_hw)
        comm_ok = comm_ok and ok
        comm_details.append(f"{label}: {detail}")

    identity_chain = workloads["attention"]
    scalar_bytes = _decision_bytes(identity_chain, identity_hw, "scalar")
    tables_bytes = _decision_bytes(identity_chain, identity_hw, "tables")

    gates = [
        gate(
            "fused-across-cores-chosen",
            best is not None,
            "no (preset, workload) chose a partitioned fused plan"
            if best is None else
            f"{best['preset']}/{best['workload']}: p{best['cores']} along "
            f"{best['partition_loop']}",
        ),
        gate(
            f"crossover-{MIN_CROSSOVER}x-vs-per-core-unfused",
            best is not None
            and best["speedup_vs_unfused"] >= MIN_CROSSOVER,
            "no partitioned winner" if best is None else
            f"{best['preset']}/{best['workload']}: "
            f"{best['speedup_vs_unfused']:.2f}x",
        ),
        gate(
            "comm-volumes-engines-bit-exact",
            comm_ok,
            "; ".join(comm_details),
        ),
        gate(
            "decision-byte-identical-across-engines",
            scalar_bytes == tables_bytes,
            f"{IDENTITY_PRESET}/attention: {len(scalar_bytes)} serialized "
            "bytes agree",
        ),
    ]
    payload = {
        "mode": "smoke" if smoke else "full",
        "min_crossover": MIN_CROSSOVER,
        "presets": [hw.name for hw in presets],
        "results": results,
        "best_crossover": best,
    }
    text = render_table(
        ["preset", "workload", "decision", "partition", "fused",
         "unfused", "speedup"],
        rows,
    )
    return payload, text, gates


def _finish(payload, text, gates, write_json):
    if write_json:
        write_artifact(
            "multicore",
            payload,
            preset=",".join(payload["presets"]),
            gates=gates,
            mode=payload["mode"],
        )
    assert_gates(gates)


def test_multicore(benchmark):
    from conftest import emit, run_once

    payload, text, gates = run_once(
        benchmark, lambda: run_multicore_experiment(smoke=False)
    )
    _finish(payload, text, gates, write_json=True)
    emit("bench_multicore", text)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="multi-core scale-out: fusion across cores vs "
                    "per-core-unfused"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small shapes, same gates, no JSON artifact",
    )
    args = parser.parse_args(argv)
    payload, text, gates = run_multicore_experiment(smoke=args.smoke)
    print(text)
    best = payload["best_crossover"]
    if best is not None:
        print(
            f"best crossover: {best['preset']}/{best['workload']} "
            f"fused over {best['cores']} cores along "
            f"{best['partition_loop']} — "
            f"{best['speedup_vs_unfused']:.2f}x vs per-core-unfused"
        )
    _finish(payload, text, gates, write_json=not args.smoke)
    return 0


if __name__ == "__main__":
    sys.exit(main())
