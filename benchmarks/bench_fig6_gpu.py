"""Figure 6: subgraph fusion performance on GPU (A100 model).

Four parts: (a) batch GEMM + batch GEMM vs PyTorch / TASO / Relay / Ansor /
TensorRT / TVM+Cutlass, (b) batch GEMM chain + softmax (TASO and
TVM+Cutlass have no softmax support, as in the paper), (c) conv + conv,
(d) conv chain + ReLU.  Paper averages for reference: (a) 2.77x over
PyTorch, 3.30x over TASO, 1.69x over Relay, 1.33x over Ansor, 2.29x over
TensorRT, 1.51x over TVM+Cutlass.

Convolution chains run at batch 8 so kernels are large enough that launch
overhead is not the dominant term (documented in EXPERIMENTS.md).
"""

from conftest import emit, run_once

from repro.hardware import a100
from repro.runtime import compare
from repro.workloads import TABLE_IV, TABLE_V

BMM_SYSTEMS = (
    "pytorch", "taso", "relay", "ansor", "tensorrt", "tvm-cutlass", "chimera",
)
SOFTMAX_SYSTEMS = ("pytorch", "relay", "ansor", "tensorrt", "chimera")
CONV_SYSTEMS = ("pytorch", "relay", "ansor", "tensorrt", "chimera")
CONV_BATCH = 8


def _summary(comp, overs):
    lines = [comp.table("PyTorch"), ""]
    for over in overs:
        lines.append(
            f"geomean Chimera speedup over {over}: "
            f"{comp.geomean_speedup('Chimera', over):.2f}x "
            f"(max {comp.max_speedup('Chimera', over):.2f}x)"
        )
    return "\n".join(lines)


def test_fig6a_bmm_bmm(benchmark):
    hw = a100()
    chains = [c.build() for c in TABLE_IV]

    def experiment():
        comp = compare(
            chains, hw, BMM_SYSTEMS, workload_names=[c.name for c in TABLE_IV]
        )
        for over in ("PyTorch", "TASO", "Relay", "Ansor", "TensorRT",
                     "TVM+Cutlass"):
            assert comp.geomean_speedup("Chimera", over) > 1.0, over
        # The fixed-order fused baseline helps on average but loses to
        # analytical ordering (the paper's BOLT diagnosis).
        assert comp.geomean_speedup("TVM+Cutlass", "PyTorch") > 1.0
        return comp

    comp = run_once(benchmark, experiment)
    emit(
        "fig6a_gpu_bmm_bmm",
        _summary(comp, ("PyTorch", "TASO", "Relay", "Ansor", "TensorRT",
                        "TVM+Cutlass")),
    )


def test_fig6b_bmm_softmax(benchmark):
    hw = a100()
    chains = [c.build(with_softmax=True) for c in TABLE_IV]

    def experiment():
        comp = compare(
            chains, hw, SOFTMAX_SYSTEMS,
            workload_names=[c.name for c in TABLE_IV],
        )
        for over in ("PyTorch", "Relay", "Ansor", "TensorRT"):
            assert comp.geomean_speedup("Chimera", over) > 1.0, over
        return comp

    comp = run_once(benchmark, experiment)
    emit(
        "fig6b_gpu_bmm_softmax",
        _summary(comp, ("PyTorch", "Relay", "Ansor", "TensorRT")),
    )


def test_fig6c_conv_conv(benchmark):
    hw = a100()
    chains = [c.build(batch=CONV_BATCH) for c in TABLE_V]

    def experiment():
        comp = compare(
            chains, hw, CONV_SYSTEMS,
            workload_names=[c.name for c in TABLE_V],
        )
        assert comp.geomean_speedup("Chimera", "PyTorch") > 1.0
        assert comp.geomean_speedup("Chimera", "TensorRT") > 1.0
        # C6 (compute-bound 3x3 consumer): fusion pays halo recomputation.
        # The paper reports no gain over Ansor there; in this reproduction
        # the first conv's memory-boundedness still leaves a gain, but the
        # recompute cost must be visible in the fused plan (documented in
        # EXPERIMENTS.md).
        c6_result = comp.rows[5].results["Chimera"]
        for plan in c6_result.plans:
            if plan.fused and len(plan.chain.ops) > 1:
                assert plan.executed_flops > plan.chain.total_flops()
        return comp

    comp = run_once(benchmark, experiment)
    emit(
        "fig6c_gpu_conv_conv",
        _summary(comp, ("PyTorch", "Relay", "Ansor", "TensorRT")),
    )


def test_fig6d_conv_relu(benchmark):
    hw = a100()
    chains = [c.build(batch=CONV_BATCH, with_relu=True) for c in TABLE_V]

    def experiment():
        comp = compare(
            chains, hw, CONV_SYSTEMS,
            workload_names=[c.name for c in TABLE_V],
        )
        assert comp.geomean_speedup("Chimera", "Relay") > 1.0
        assert comp.geomean_speedup("Chimera", "Ansor") > 1.0
        return comp

    comp = run_once(benchmark, experiment)
    emit(
        "fig6d_gpu_conv_relu",
        _summary(comp, ("PyTorch", "Relay", "Ansor", "TensorRT")),
    )
