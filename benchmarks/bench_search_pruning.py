"""Order-search pruning: cold-compile latency with and without the bound.

The inter-block search solves a constrained tile-size problem per candidate
order; the DV lower bound (``repro.core.search``) skips solves that cannot
beat the incumbent and the solve memo collapses symmetric orders.  This
benchmark cold-compiles the attention GEMM chain (G1) on every hardware
preset under the exhaustive baseline and under pruning + memoization, and
reports latency plus orders solved vs. pruned.  The two paths must pick
byte-identical plans; the pruned path must be >= 3x faster where the
candidate space is large (the NPU preset enumerates the most orders).
"""

import json
import time

from conftest import emit, run_once

from repro.analysis import render_table
from repro.core.optimizer import ChimeraOptimizer
from repro.core.search import (
    SearchPolicy,
    SearchStats,
    reset_search_stats,
    solve_memo,
)
from repro.hardware import all_presets
from repro.runtime.serialization import plan_to_dict
from repro.workloads import gemm_chain_config

#: The preset whose order space is rich enough to demand the >= 3x bar.
GATED_PRESET = "ascend-910"
MIN_SPEEDUP = 3.0


def cold_optimize(chain, hw, policy):
    """One cold inter-block pass: empty memo, fresh optimizer."""
    solve_memo().clear()
    reset_search_stats()
    stats = SearchStats()
    optimizer = ChimeraOptimizer(hw, policy=policy)
    started = time.perf_counter()
    plan = optimizer.optimize(chain, stats=stats)
    elapsed = time.perf_counter() - started
    return plan, stats, elapsed


def test_search_pruning_speedup(benchmark):
    chain = gemm_chain_config("G1").build()

    def experiment():
        rows = []
        speedups = {}
        for hw in all_presets():
            base_plan, base_stats, base_s = cold_optimize(
                chain, hw, SearchPolicy.exhaustive()
            )
            fast_plan, fast_stats, fast_s = cold_optimize(
                chain, hw, SearchPolicy(prune=True, memoize=True, workers=1)
            )
            assert json.dumps(plan_to_dict(fast_plan), sort_keys=True) == (
                json.dumps(plan_to_dict(base_plan), sort_keys=True)
            ), f"pruned plan diverged from exhaustive on {hw.name}"
            speedups[hw.name] = base_s / fast_s
            rows.append(
                [
                    hw.name,
                    f"{base_s * 1e3:.0f} ms ({base_stats.solves} solves)",
                    f"{fast_s * 1e3:.0f} ms ({fast_stats.solves} solves)",
                    str(fast_stats.pruned),
                    str(fast_stats.memo_hits),
                    f"{base_s / fast_s:.1f}x",
                ]
            )
        assert speedups[GATED_PRESET] >= MIN_SPEEDUP, (
            f"pruning+memoization speedup on {GATED_PRESET} was "
            f"{speedups[GATED_PRESET]:.1f}x, expected >= {MIN_SPEEDUP}x"
        )
        return rows, speedups

    rows, speedups = run_once(benchmark, experiment)
    emit(
        "search_pruning",
        render_table(
            [
                "hardware", "exhaustive", "pruned+memo",
                "pruned", "memo hits", "speedup",
            ],
            rows,
        )
        + "\n\nplans byte-identical on every preset; "
        + f"{GATED_PRESET} speedup {speedups[GATED_PRESET]:.1f}x "
        + f"(gate: >= {MIN_SPEEDUP:.0f}x)",
    )
