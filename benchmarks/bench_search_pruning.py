"""Order-search pruning: cold-compile latency with and without the bound.

The inter-block search solves a constrained tile-size problem per candidate
order; the DV lower bound (``repro.core.search``) skips solves that cannot
beat the incumbent and the solve memo collapses symmetric orders.  This
benchmark cold-compiles the attention GEMM chain (G1) on every hardware
preset under the exhaustive baseline and under pruning + memoization, and
reports latency plus orders solved vs. pruned.

Gates (written to ``BENCH_search_pruning.json`` via the shared artifact
envelope):

* the exhaustive and pruned paths pick byte-identical plans on every
  preset;
* the pruned path is >= ``MIN_SPEEDUP``x faster on the preset whose
  candidate space is large (the NPU preset enumerates the most orders).

Run standalone with ``python benchmarks/bench_search_pruning.py
[--smoke]``; smoke restricts to the gated preset but enforces the same
gates.
"""

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from artifact import assert_gates, gate, write_artifact
from repro.analysis import render_table
from repro.core.optimizer import ChimeraOptimizer
from repro.core.search import (
    SearchPolicy,
    SearchStats,
    reset_search_stats,
    solve_memo,
)
from repro.hardware import all_presets
from repro.runtime.serialization import plan_to_dict
from repro.workloads import gemm_chain_config

#: The preset whose order space is rich enough to demand the >= 3x bar.
GATED_PRESET = "ascend-910"
MIN_SPEEDUP = 3.0


def cold_optimize(chain, hw, policy):
    """One cold inter-block pass: empty memo, fresh optimizer."""
    solve_memo().clear()
    reset_search_stats()
    stats = SearchStats()
    optimizer = ChimeraOptimizer(hw, policy=policy)
    started = time.perf_counter()
    plan = optimizer.optimize(chain, stats=stats)
    elapsed = time.perf_counter() - started
    return plan, stats, elapsed


def run_pruning_experiment(smoke=False):
    chain = gemm_chain_config("G1").build()
    presets = [
        hw
        for hw in all_presets()
        if not smoke or hw.name == GATED_PRESET
    ]
    rows = []
    per_preset = {}
    divergent = []
    for hw in presets:
        base_plan, base_stats, base_s = cold_optimize(
            chain, hw, SearchPolicy.exhaustive()
        )
        fast_plan, fast_stats, fast_s = cold_optimize(
            chain, hw, SearchPolicy(prune=True, memoize=True, workers=1)
        )
        if json.dumps(plan_to_dict(fast_plan), sort_keys=True) != (
            json.dumps(plan_to_dict(base_plan), sort_keys=True)
        ):
            divergent.append(hw.name)
        per_preset[hw.name] = {
            "exhaustive_s": base_s,
            "exhaustive_solves": base_stats.solves,
            "pruned_s": fast_s,
            "pruned_solves": fast_stats.solves,
            "pruned": fast_stats.pruned,
            "memo_hits": fast_stats.memo_hits,
            "speedup": base_s / fast_s,
        }
        rows.append(
            [
                hw.name,
                f"{base_s * 1e3:.0f} ms ({base_stats.solves} solves)",
                f"{fast_s * 1e3:.0f} ms ({fast_stats.solves} solves)",
                str(fast_stats.pruned),
                str(fast_stats.memo_hits),
                f"{base_s / fast_s:.1f}x",
            ]
        )
    gated = per_preset[GATED_PRESET]["speedup"]
    gates = [
        gate(
            "pruned-plans-byte-identical",
            not divergent,
            "pruned plan diverged from exhaustive on: "
            + ", ".join(divergent)
            if divergent
            else f"{len(presets)} preset(s) byte-identical",
        ),
        gate(
            f"{GATED_PRESET}-speedup-{MIN_SPEEDUP:.0f}x",
            gated >= MIN_SPEEDUP,
            f"pruning+memoization speedup {gated:.1f}x",
        ),
    ]
    payload = {
        "mode": "smoke" if smoke else "full",
        "workload": "G1",
        "gated_preset": GATED_PRESET,
        "min_speedup": MIN_SPEEDUP,
        "presets": per_preset,
    }
    text = (
        render_table(
            [
                "hardware", "exhaustive", "pruned+memo",
                "pruned", "memo hits", "speedup",
            ],
            rows,
        )
        + "\n\nplans byte-identical on every preset; "
        + f"{GATED_PRESET} speedup {gated:.1f}x "
        + f"(gate: >= {MIN_SPEEDUP:.0f}x)"
    )
    return payload, text, gates


def _finish(payload, text, gates, write_json):
    if write_json:
        write_artifact(
            "search_pruning",
            payload,
            preset=",".join(payload["presets"]),
            gates=gates,
            mode=payload["mode"],
        )
    assert_gates(gates)


def test_search_pruning_speedup(benchmark):
    from conftest import emit, run_once

    payload, text, gates = run_once(
        benchmark, lambda: run_pruning_experiment(smoke=False)
    )
    _finish(payload, text, gates, write_json=True)
    emit("search_pruning", text)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="order-search pruning vs the exhaustive baseline"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="gated preset only, same gates, no JSON artifact",
    )
    args = parser.parse_args(argv)
    payload, text, gates = run_pruning_experiment(smoke=args.smoke)
    print(text)
    _finish(payload, text, gates, write_json=not args.smoke)
    return 0


if __name__ == "__main__":
    sys.exit(main())
