"""Movement-tables engine: cold exhaustive-order compile speedup.

The tentpole claim of the tables engine is that the analytical model stops
being the compile-time bottleneck: ``MovementModel`` compiles once into
:class:`repro.core.tables.MovementTables`, the tile solver feeds SLSQP
analytic log-space gradients through generated row kernels (with properly
scaled constraints), and integer refinement scores its lattice in one
batched call.  This benchmark cold-compiles GEMM + conv chains under the
exhaustive order policy on every hardware preset and compares:

* **baseline** — the pre-tables solver: scalar engine, finite-difference
  SLSQP gradients, raw byte-scale constraints (``solver._ANALYTIC_JAC``
  escape hatch);
* **tables** — the compiled engine with analytic gradients;
* **scalar** — the scalar reference under the *production* solver, which
  must pick a byte-identical plan to the tables engine on every cell.

Gate: aggregate (sum over cells) speedup of tables over baseline must be
>= 5x.  Per-cell ratios vary — small order spaces are dominated by order
enumeration, which both engines share — so the gate is on the aggregate.
Results land in ``benchmarks/results/bench_movement_tables.txt`` and the
machine-readable ``benchmarks/results/BENCH_movement_tables.json``.

Run standalone with ``python benchmarks/bench_movement_tables.py
[--smoke]``; ``--smoke`` restricts to two workloads on two presets with a
relaxed 2x gate (CI keeps it quick and flake-free).
"""

import argparse
import contextlib
import json
import pathlib
import sys
import time

from repro.analysis import render_table
from repro.core import solver
from repro.core.optimizer import ChimeraOptimizer
from repro.core.search import SearchPolicy, reset_search_stats, solve_memo
from repro.core.tables import clear_tables_memo
from repro.hardware import all_presets
from repro.runtime.serialization import plan_to_dict
from repro.workloads import conv_chain_config, gemm_chain_config

RESULTS_JSON = (
    pathlib.Path(__file__).parent / "results" / "BENCH_movement_tables.json"
)

FULL_WORKLOADS = ("G1", "G4", "C4", "C6")
FULL_GATE = 5.0
SMOKE_WORKLOADS = ("G1", "C4")
SMOKE_PRESETS = ("xeon-gold-6240", "a100")
SMOKE_GATE = 2.0


def _build(name):
    if name.startswith("G"):
        return gemm_chain_config(name).build()
    return conv_chain_config(name).build()


@contextlib.contextmanager
def _seed_solver():
    """Emulate the pre-tables solver (finite differences, raw scaling)."""
    previous = solver._ANALYTIC_JAC
    solver._ANALYTIC_JAC = False
    try:
        yield
    finally:
        solver._ANALYTIC_JAC = previous


def _cold_compile(chain, hw, engine):
    solve_memo().clear()
    clear_tables_memo()
    reset_search_stats()
    optimizer = ChimeraOptimizer(
        hw, policy=SearchPolicy.exhaustive(), engine=engine
    )
    started = time.perf_counter()
    plan = optimizer.optimize(chain)
    return plan, time.perf_counter() - started


def _timed(chain, hw, engine, rounds):
    best_s, plan = float("inf"), None
    for _ in range(rounds):
        plan, elapsed = _cold_compile(chain, hw, engine)
        best_s = min(best_s, elapsed)
    return plan, best_s


def run_experiment(smoke=False):
    workloads = SMOKE_WORKLOADS if smoke else FULL_WORKLOADS
    presets = [
        hw
        for hw in all_presets()
        if not smoke or hw.name in SMOKE_PRESETS
    ]
    gate = SMOKE_GATE if smoke else FULL_GATE

    cells = {}
    rows = []
    for hw in presets:
        for name in workloads:
            chain = _build(name)
            with _seed_solver():
                _, baseline_s = _timed(chain, hw, "scalar", rounds=1)
            tables_plan, tables_s = _timed(chain, hw, "tables", rounds=2)
            scalar_plan, scalar_s = _timed(chain, hw, "scalar", rounds=2)
            tables_json = json.dumps(plan_to_dict(tables_plan),
                                     sort_keys=True)
            scalar_json = json.dumps(plan_to_dict(scalar_plan),
                                     sort_keys=True)
            assert tables_json == scalar_json, (
                f"tables plan diverged from the scalar reference on "
                f"{hw.name}/{name}"
            )
            cell = f"{hw.name}/{name}"
            cells[cell] = {
                "baseline_s": baseline_s,
                "tables_s": tables_s,
                "scalar_s": scalar_s,
                "speedup": baseline_s / tables_s,
            }
            rows.append([
                cell,
                f"{baseline_s * 1e3:.0f} ms",
                f"{tables_s * 1e3:.0f} ms",
                f"{scalar_s * 1e3:.0f} ms",
                f"{baseline_s / tables_s:.1f}x",
            ])

    baseline_total = sum(c["baseline_s"] for c in cells.values())
    tables_total = sum(c["tables_s"] for c in cells.values())
    aggregate = baseline_total / tables_total
    payload = {
        "mode": "smoke" if smoke else "full",
        "gate": gate,
        "aggregate_speedup": aggregate,
        "baseline_total_s": baseline_total,
        "tables_total_s": tables_total,
        "cells": cells,
    }
    rows.append([
        "aggregate",
        f"{baseline_total * 1e3:.0f} ms",
        f"{tables_total * 1e3:.0f} ms",
        "",
        f"{aggregate:.1f}x",
    ])
    text = render_table(
        ["cell", "baseline (FD, scalar)", "tables", "scalar (ref)",
         "speedup"],
        rows,
    )
    return payload, text


def _finish(payload, text, write_json):
    if write_json:
        RESULTS_JSON.parent.mkdir(exist_ok=True)
        RESULTS_JSON.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
    assert payload["aggregate_speedup"] >= payload["gate"], (
        f"cold exhaustive-order compile speedup was "
        f"{payload['aggregate_speedup']:.2f}x, expected >= "
        f"{payload['gate']:.1f}x"
    )


def test_movement_tables_speedup(benchmark):
    from conftest import emit, run_once

    payload, text = run_once(
        benchmark, lambda: run_experiment(smoke=False)
    )
    _finish(payload, text, write_json=True)
    emit("bench_movement_tables", text)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="two workloads x two presets, relaxed gate, no JSON artifact",
    )
    args = parser.parse_args(argv)
    payload, text = run_experiment(smoke=args.smoke)
    print(text)
    print(f"\naggregate speedup {payload['aggregate_speedup']:.2f}x "
          f"(gate {payload['gate']:.1f}x, mode {payload['mode']})")
    _finish(payload, text, write_json=not args.smoke)
    return 0


if __name__ == "__main__":
    sys.exit(main())
