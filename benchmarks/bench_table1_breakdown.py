"""Table I: compute/memory breakdown of ML models.

Reproduces the %MI / %CI / %BMM execution-time shares for Transformer,
Bert-Base and ViT-Huge (sequence length 512 / 256 patches) on the A100
model, plus the accelerator characteristics rows straight from the
hardware presets.
"""

from conftest import emit, run_once

from repro.analysis import render_table
from repro.hardware import all_presets, a100
from repro.workloads import model_breakdown
from repro.workloads.networks import NetworkConfig

# The paper sets sequence length 512 for every model in Table I.
PAPER_ROWS = {
    "Transformer": (
        NetworkConfig("Transformer", 12, 8, 512, 64),
        (19.45, 40.51, 40.04),
    ),
    "Bert-Base": (
        NetworkConfig("Bert-Base", 12, 12, 512, 64),
        (30.56, 42.79, 26.65),
    ),
    "ViT-Huge": (
        NetworkConfig("ViT-Huge", 32, 16, 512, 80),
        (15.63, 50.85, 33.52),
    ),
}


def test_table1_model_breakdown(benchmark):
    hw = a100()

    def experiment():
        rows = []
        for name, (config, paper) in PAPER_ROWS.items():
            measured = model_breakdown(config, hw)
            rows.append(
                [
                    name,
                    f"{measured.mi_fraction * 100:.2f}",
                    f"{measured.ci_fraction * 100:.2f}",
                    f"{measured.bmm_fraction * 100:.2f}",
                    f"{paper[0]:.2f}",
                    f"{paper[1]:.2f}",
                    f"{paper[2]:.2f}",
                ]
            )
            # The motivating observation must reproduce: the memory-bound
            # attention batch GEMMs take a substantial share.
            assert measured.bmm_fraction > 0.08
        return rows

    rows = run_once(benchmark, experiment)
    emit(
        "table1_breakdown",
        render_table(
            ["Model", "%MI", "%CI", "%BMM",
             "paper %MI", "paper %CI", "paper %BMM"],
            rows,
        ),
    )


def test_table1_accelerator_characteristics(benchmark):
    def experiment():
        rows = []
        for hw in all_presets():
            rows.append(
                [
                    hw.name,
                    f"{hw.peak_flops / 1e12:.0f} TFlops",
                    f"{hw.dram_bandwidth / 1e9:.0f} GB/s",
                    f"{hw.machine_balance:.0f} Flop/byte",
                ]
            )
        return rows

    rows = run_once(benchmark, experiment)
    emit(
        "table1_accelerators",
        render_table(["Device", "Peak Perf.", "Memory BW.", "Peak Perf/BW"], rows),
    )
