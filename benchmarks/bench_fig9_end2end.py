"""Figure 9: end-to-end network performance on the A100 model.

Times Transformer / Bert / ViT encoders (batch 1) under the paper's five
pairings: PyTorch+CuDNN, Relay+TensorRT, Relay+CuDNN, Relay+Ansor, and
Relay+Chimera (Relay hosting the graph, the named system supplying the
attention batch GEMM chain kernels).  Paper geomeans for Relay+Chimera:
1.42x over Relay+TensorRT, 1.31x over Relay+CuDNN, 1.22x over Relay+Ansor.
"""

from conftest import emit, run_once

from repro.analysis import geomean, render_table
from repro.baselines import get_system
from repro.hardware import a100
from repro.ir.graph import partition_graph
from repro.workloads import build_network, network_config

NETWORKS = (
    "TF-Small", "TF-Base", "TF-Large",
    "Bert-Small", "Bert-Base", "Bert-Large",
    "ViT-Base/14", "ViT-Large/14", "ViT-Huge/14",
)

PAIRINGS = {
    "PyTorch+CuDNN": ("pytorch", "pytorch"),
    "Relay+TensorRT": ("relay", "tensorrt"),
    "Relay+CuDNN": ("relay", "cudnn"),
    "Relay+Ansor": ("relay", "ansor"),
    "Relay+Chimera": ("relay", "chimera"),
}


def test_fig9_end_to_end(benchmark, runner):
    hw = a100()

    def experiment():
        totals = {name: {} for name in NETWORKS}
        for net_name in NETWORKS:
            dag = build_network(network_config(net_name))
            partition = partition_graph(dag)
            fusable = {node.name for node in partition.chains}
            for pairing, (base_key, chain_key) in PAIRINGS.items():
                total = 0.0
                for node in partition.all_nodes():
                    key = chain_key if node.name in fusable else base_key
                    result = runner.run(key, node.chain, hw)
                    total += result.time * node.repeat
                totals[net_name][pairing] = total
        return totals

    totals = run_once(benchmark, experiment)

    rows = []
    speedups = {p: [] for p in PAIRINGS if p != "Relay+Chimera"}
    for net_name in NETWORKS:
        times = totals[net_name]
        base = times["PyTorch+CuDNN"]
        rows.append(
            [net_name]
            + [f"{base / times[p]:.2f}" for p in PAIRINGS]
        )
        for p in speedups:
            speedups[p].append(times[p] / times["Relay+Chimera"])

    summary = []
    for p, values in speedups.items():
        g = geomean(values)
        summary.append(f"Relay+Chimera geomean speedup over {p}: {g:.2f}x")
        assert g > 1.0, p

    emit(
        "fig9_end_to_end",
        "relative performance normalized to PyTorch+CuDNN "
        "(higher is better)\n"
        + render_table(["network"] + list(PAIRINGS), rows)
        + "\n\n"
        + "\n".join(summary)
        + "\n(paper: 1.42x over Relay+TensorRT, 1.31x over Relay+CuDNN, "
        "1.22x over Relay+Ansor)",
    )
