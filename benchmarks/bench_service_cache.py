"""Compilation service: cold vs. warm compiles, serial vs. parallel batch.

Two experiments over the caching service:

1. **cold → warm** on the attention batch-GEMM chain: a cold compile runs
   the full analytical search; a warm one decodes the cached plan and only
   replays kernel lowering.  The memory tier and the disk tier (a fresh
   service instance over the same cache dir) are timed separately; both
   must be at least 10x faster than cold.
2. **serial vs. parallel batch** over distinct Table IV-sized chains, cold
   caches in both runs, reporting the wall-clock ratio.
"""

import tempfile
import time

from conftest import emit, run_once

import repro
from repro.analysis import render_table
from repro.service import CompileRequest, CompileService

MIN_WARM_SPEEDUP = 10.0
BATCH_SIZES = [(1, 256 + 64 * i, 64, 64, 256) for i in range(6)]


def _batch_requests(hw):
    return [
        CompileRequest(repro.batch_gemm_chain(*dims), hw)
        for dims in BATCH_SIZES
    ]


def test_service_cache(benchmark):
    hw = repro.a100()
    chain = repro.attention_chain(batch=8, seq=256, head_dim=64)

    def experiment():
        rows = []
        with tempfile.TemporaryDirectory() as tmp:
            service = CompileService(cache_dir=tmp)
            started = time.perf_counter()
            cold = service.compile(chain, hw)
            cold_s = time.perf_counter() - started

            started = time.perf_counter()
            warm = service.compile(chain, hw)
            memory_s = time.perf_counter() - started

            fresh = CompileService(cache_dir=tmp)
            started = time.perf_counter()
            disk = fresh.compile(chain, hw)
            disk_s = time.perf_counter() - started

            assert warm.predicted_time == cold.predicted_time
            assert disk.predicted_time == cold.predicted_time
            assert (warm.kernels[0].plan.outer.order
                    == cold.kernels[0].plan.outer.order)
            memory_speedup = cold_s / memory_s
            disk_speedup = cold_s / disk_s
            assert memory_speedup >= MIN_WARM_SPEEDUP
            assert disk_speedup >= MIN_WARM_SPEEDUP
            rows.append(["cold (optimizer)", f"{cold_s * 1e3:.1f} ms", "1.0x"])
            rows.append([
                "warm (memory tier)", f"{memory_s * 1e3:.1f} ms",
                f"{memory_speedup:.0f}x",
            ])
            rows.append([
                "warm (disk tier, new service)", f"{disk_s * 1e3:.1f} ms",
                f"{disk_speedup:.0f}x",
            ])

        with tempfile.TemporaryDirectory() as tmp:
            serial = CompileService(cache_dir=tmp)
            started = time.perf_counter()
            report = serial.compile_batch(_batch_requests(hw), max_workers=1)
            serial_s = time.perf_counter() - started
            assert report.succeeded
        with tempfile.TemporaryDirectory() as tmp:
            parallel = CompileService(cache_dir=tmp)
            started = time.perf_counter()
            report = parallel.compile_batch(_batch_requests(hw), max_workers=4)
            parallel_s = time.perf_counter() - started
            assert report.succeeded
        rows.append([
            f"batch of {len(BATCH_SIZES)}, serial", f"{serial_s * 1e3:.0f} ms",
            "1.0x",
        ])
        rows.append([
            f"batch of {len(BATCH_SIZES)}, 4 workers",
            f"{parallel_s * 1e3:.0f} ms",
            f"{serial_s / parallel_s:.2f}x",
        ])
        return rows, memory_speedup, disk_speedup

    rows, memory_speedup, disk_speedup = run_once(benchmark, experiment)
    emit(
        "service_cache",
        render_table(["configuration", "latency", "speedup"], rows)
        + f"\n\nwarm-cache speedup: {memory_speedup:.0f}x memory, "
        f"{disk_speedup:.0f}x disk (threshold {MIN_WARM_SPEEDUP:.0f}x)",
    )
