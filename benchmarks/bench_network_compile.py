"""Network compilation: cold serial vs. cold batch vs. warm-cache batch.

Compiles Bert-Base end-to-end three ways through the same service:

1. **cold serial** — no service, one ``compile_chain`` per node;
2. **cold batch** — empty cache, nodes fanned through ``compile_batch``;
3. **warm batch** — same service again, every node a cache hit.

All three must produce byte-identical serialized NetworkPlans (the
determinism contract), the plan's end-to-end time must beat the
all-unfused baseline, and the warm batch must be at least
``MIN_WARM_SPEEDUP``x faster than the cold serial compile.
"""

import tempfile

from conftest import emit, run_once

import repro
from repro.analysis import render_table
from repro.runtime.network import benchmark_network_compile
from repro.workloads import build_network, network_config

MIN_WARM_SPEEDUP = 5.0


def test_network_compile(benchmark):
    dag = build_network(network_config("Bert-Base"))
    hw = repro.xeon_gold_6240()

    def experiment():
        with tempfile.TemporaryDirectory() as tmp:
            service = repro.CompileService(cache_dir=tmp)
            plan, report = benchmark_network_compile(dag, hw, service)
        assert plan.total_time <= plan.unfused_total_time
        assert report.warm_speedup >= MIN_WARM_SPEEDUP
        return plan, report

    plan, report = run_once(benchmark, experiment)
    rows = [
        ["cold serial (no service)",
         f"{report.cold_serial_seconds * 1e3:.0f} ms", "1.00x"],
        ["cold batch (empty cache)",
         f"{report.cold_batch_seconds * 1e3:.0f} ms",
         f"{report.batch_speedup:.2f}x"],
        ["warm batch (cache hits)",
         f"{report.warm_batch_seconds * 1e3:.0f} ms",
         f"{report.warm_speedup:.2f}x"],
    ]
    emit(
        "network_compile",
        render_table(["configuration", "wall clock", "vs cold serial"], rows)
        + f"\n\n{plan.network}: {len(plan.nodes)} nodes, "
        f"{plan.kernel_count} kernels, "
        f"{plan.total_time * 1e3:.3f} ms end-to-end predicted "
        f"({plan.speedup_over_unfused:.3f}x over all-unfused), "
        f"warm-cache threshold {MIN_WARM_SPEEDUP:.0f}x",
    )
