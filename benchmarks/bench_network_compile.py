"""Network compilation: service speedups and stitched-vs-unstitched plans.

Part one compiles Bert-Base end-to-end three ways through the same
service:

1. **cold serial** — no service, one ``compile_chain`` per node;
2. **cold batch** — empty cache, nodes fanned through ``compile_batch``;
3. **warm batch** — same service again, every node a cache hit.

All three must produce byte-identical serialized NetworkPlans (the
determinism contract), the plan's end-to-end time must beat the
all-unfused baseline, and the warm batch must be at least
``MIN_WARM_SPEEDUP``x faster than the cold serial compile.

Part two measures what memory-intensive stitching buys: each network is
compiled twice, ``stitch=True`` (softmax/layernorm/elementwise glue folded
into the adjacent compute-intensive block schedules) and ``stitch=False``
(every graph node compiled on its own).  Gate: the stitched plan's
predicted end-to-end time must not exceed the unstitched plan's, and the
stitched partition must actually merge nodes.  Results land in
``benchmarks/results/bench_stitching.txt`` and
``benchmarks/results/BENCH_stitching.json`` (the shared
``benchmarks/artifact.py`` envelope: schema version, preset, gates).

Run the stitching comparison standalone with
``python benchmarks/bench_network_compile.py [--smoke]``; ``--smoke``
restricts to Bert-Small (CI keeps it quick) but enforces the same gate.
"""

import argparse
import pathlib
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).parent))

import repro
from artifact import assert_gates, gate, write_artifact
from repro.analysis import render_table
from repro.runtime.network import benchmark_network_compile, compile_network
from repro.workloads import build_network, network_config

MIN_WARM_SPEEDUP = 5.0

FULL_NETWORKS = ("Bert-Small", "Bert-Base")
SMOKE_NETWORKS = ("Bert-Small",)


def run_stitching_experiment(smoke=False):
    """Compile each network with and without stitching; compare plans."""
    hw = repro.xeon_gold_6240()
    networks = SMOKE_NETWORKS if smoke else FULL_NETWORKS

    per_network = {}
    rows = []
    for name in networks:
        dag = build_network(network_config(name))
        stitched = compile_network(dag, hw, stitch=True)
        unstitched = compile_network(dag, hw, stitch=False)
        ratio = stitched.total_time / unstitched.total_time
        per_network[name] = {
            "stitched_time_s": stitched.total_time,
            "unstitched_time_s": unstitched.total_time,
            "ratio": ratio,
            "stitched_nodes": list(stitched.stitched_nodes),
            "stitched_plan_nodes": len(stitched.nodes),
            "unstitched_plan_nodes": len(unstitched.nodes),
            "stitched_kernels": stitched.kernel_count,
            "unstitched_kernels": unstitched.kernel_count,
        }
        rows.append([
            name,
            f"{len(stitched.nodes)} ({len(stitched.stitched_nodes)} merged)",
            str(len(unstitched.nodes)),
            f"{stitched.total_time * 1e3:.3f} ms",
            f"{unstitched.total_time * 1e3:.3f} ms",
            f"{ratio:.3f}",
        ])

    payload = {
        "mode": "smoke" if smoke else "full",
        "hardware": hw.name,
        "networks": per_network,
    }
    text = render_table(
        ["network", "stitched nodes", "unstitched nodes",
         "stitched time", "unstitched time", "ratio"],
        rows,
    )
    return payload, text


def _finish_stitching(payload, text, write_json):
    gates = []
    for name, stats in payload["networks"].items():
        gates.append(gate(
            f"{name}-merges-nodes",
            bool(stats["stitched_nodes"]),
            f"stitched nodes: {', '.join(stats['stitched_nodes']) or 'none'}",
        ))
        gates.append(gate(
            f"{name}-stitched-not-slower",
            stats["stitched_time_s"] <= stats["unstitched_time_s"],
            f"stitched {stats['stitched_time_s'] * 1e3:.3f} ms vs "
            f"unstitched {stats['unstitched_time_s'] * 1e3:.3f} ms",
        ))
    if write_json:
        write_artifact(
            "stitching",
            payload,
            preset=payload["hardware"],
            gates=gates,
            mode=payload["mode"],
        )
    assert_gates(gates)


def test_stitching_speedup(benchmark):
    from conftest import emit, run_once

    payload, text = run_once(
        benchmark, lambda: run_stitching_experiment(smoke=False)
    )
    _finish_stitching(payload, text, write_json=True)
    emit("bench_stitching", text)


def test_network_compile(benchmark):
    from conftest import emit, run_once
    dag = build_network(network_config("Bert-Base"))
    hw = repro.xeon_gold_6240()

    def experiment():
        with tempfile.TemporaryDirectory() as tmp:
            service = repro.CompileService(cache_dir=tmp)
            plan, report = benchmark_network_compile(dag, hw, service)
        assert plan.total_time <= plan.unfused_total_time
        assert report.warm_speedup >= MIN_WARM_SPEEDUP
        return plan, report

    plan, report = run_once(benchmark, experiment)
    rows = [
        ["cold serial (no service)",
         f"{report.cold_serial_seconds * 1e3:.0f} ms", "1.00x"],
        ["cold batch (empty cache)",
         f"{report.cold_batch_seconds * 1e3:.0f} ms",
         f"{report.batch_speedup:.2f}x"],
        ["warm batch (cache hits)",
         f"{report.warm_batch_seconds * 1e3:.0f} ms",
         f"{report.warm_speedup:.2f}x"],
    ]
    emit(
        "network_compile",
        render_table(["configuration", "wall clock", "vs cold serial"], rows)
        + f"\n\n{plan.network}: {len(plan.nodes)} nodes, "
        f"{plan.kernel_count} kernels, "
        f"{plan.total_time * 1e3:.3f} ms end-to-end predicted "
        f"({plan.speedup_over_unfused:.3f}x over all-unfused), "
        f"warm-cache threshold {MIN_WARM_SPEEDUP:.0f}x",
    )


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="stitched vs unstitched network compilation"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="Bert-Small only, same gate, no JSON artifact",
    )
    args = parser.parse_args(argv)
    payload, text = run_stitching_experiment(smoke=args.smoke)
    print(text)
    for name, stats in payload["networks"].items():
        print(f"{name}: stitched/unstitched time ratio "
              f"{stats['ratio']:.3f}, merged nodes "
              f"{', '.join(stats['stitched_nodes']) or 'none'}")
    _finish_stitching(payload, text, write_json=not args.smoke)
    return 0


if __name__ == "__main__":
    sys.exit(main())
