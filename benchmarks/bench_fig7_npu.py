"""Figure 7: GEMM chain fusion on NPU (Ascend 910 model).

All Table IV chains at batch 1, against the TBE library and AKG, as in the
paper.  Paper averages: Chimera 2.39x over TBE, 1.14x over AKG; for some
large chains Chimera gains nothing over AKG because the Unified Buffer
bottlenecks the intermediate handoff.
"""

from conftest import emit, run_once

from repro.hardware import ascend_910
from repro.runtime import compare
from repro.workloads import TABLE_IV

SYSTEMS = ("tbe", "akg", "chimera")


def test_fig7_npu_gemm_chain(benchmark):
    hw = ascend_910()
    chains = [c.build(batch_override=1) for c in TABLE_IV]

    def experiment():
        comp = compare(
            chains, hw, SYSTEMS, workload_names=[c.name for c in TABLE_IV]
        )
        assert comp.geomean_speedup("Chimera", "TBE") > 1.0
        assert comp.geomean_speedup("Chimera", "AKG") > 1.0
        # AKG is the strong baseline (close to Chimera), TBE the weak one.
        assert comp.geomean_speedup("Chimera", "TBE") > comp.geomean_speedup(
            "Chimera", "AKG"
        )
        return comp

    comp = run_once(benchmark, experiment)
    lines = [comp.table("TBE"), ""]
    for over in ("TBE", "AKG"):
        lines.append(
            f"geomean Chimera speedup over {over}: "
            f"{comp.geomean_speedup('Chimera', over):.2f}x "
            f"(max {comp.max_speedup('Chimera', over):.2f}x)"
        )
    emit("fig7_npu_gemm_chain", "\n".join(lines))
