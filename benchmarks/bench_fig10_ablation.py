"""Figure 10: ablation study — cost model (C), fusion (F), micro kernel (M).

Runs the five Chimera variants of Section VI-E on the Table IV batch GEMM
chains (CPU model) and prints per-chain normalized performance plus the
average contribution of each component.  Paper averages over baseline:
cost model 2.37x, fusion 1.89x, micro kernel 1.61x.
"""

from conftest import emit, run_once

from repro.analysis import geomean, render_table
from repro.hardware import xeon_gold_6240
from repro.runtime import ablation_study
from repro.workloads import TABLE_IV

# Every third chain keeps the benchmark affordable while spanning
# Bert / ViT / MLP-Mixer shapes.
CONFIGS = [c for i, c in enumerate(TABLE_IV) if i % 3 == 0]


def test_fig10_ablation(benchmark):
    hw = xeon_gold_6240()

    def experiment():
        per_chain = {}
        for config in CONFIGS:
            per_chain[config.name] = ablation_study(config.build(), hw)
        return per_chain

    per_chain = run_once(benchmark, experiment)

    variants = ["baseline", "v-C", "v-F", "v-M", "Chimera"]
    rows = []
    gains = {v: [] for v in variants}
    for name, times in per_chain.items():
        base = times["baseline"]
        rows.append([name] + [f"{base / times[v]:.2f}" for v in variants])
        for v in variants:
            gains[v].append(times["baseline"] / times[v])

    summary = [
        f"avg speedup over baseline — {v}: {geomean(gains[v]):.2f}x"
        for v in variants[1:]
    ]
    # Reproduction shape: all three components together win by the
    # largest margin.  Single components move less here than in the paper
    # (and naive fusion without the cost model can even hurt — picking a
    # hostile order); the complementary-components conclusion stands.
    full = geomean(gains["Chimera"])
    assert full > 1.2
    for v in ("v-C", "v-F", "v-M"):
        assert geomean(gains[v]) >= 0.80
        assert full >= geomean(gains[v])

    emit(
        "fig10_ablation",
        "normalized performance over `baseline` (higher is better)\n"
        + render_table(["chain"] + variants, rows)
        + "\n\n"
        + "\n".join(summary)
        + "\n(paper: cost model 2.37x, fusion 1.89x, micro kernel 1.61x)",
    )
