"""Shared benchmark harness utilities.

Every benchmark regenerates one of the paper's tables or figures: it runs
the experiment once inside the ``benchmark`` fixture (so ``pytest
benchmarks/ --benchmark-only`` times the full experiment), prints the same
rows/series the paper reports, and writes the text to
``benchmarks/results/<name>.txt``.
"""

from __future__ import annotations

import pathlib
from typing import Callable, Dict, Tuple

import pytest

from repro.baselines import get_system
from repro.baselines.base import SystemResult
from repro.hardware.spec import HardwareSpec
from repro.ir.chain import OperatorChain

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


class CachedRunner:
    """Runs (system, chain) pairs once per session.

    Figure 9's pairings re-time the same non-chain nodes under the same
    base system; caching keeps the end-to-end benchmark affordable.
    """

    def __init__(self) -> None:
        self._cache: Dict[Tuple[str, str, str], SystemResult] = {}

    def run(
        self, system_key: str, chain: OperatorChain, hardware: HardwareSpec
    ) -> SystemResult:
        key = (system_key, chain.name, hardware.name)
        if key not in self._cache:
            self._cache[key] = get_system(system_key).run(chain, hardware)
        return self._cache[key]


@pytest.fixture(scope="session")
def runner() -> CachedRunner:
    return CachedRunner()


def run_once(benchmark, fn: Callable):
    """Execute an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
