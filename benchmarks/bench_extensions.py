"""Extension workloads beyond the paper's evaluation.

The paper notes its analysis "remains similar" for longer chains and other
operators; these benchmarks exercise that generality:

* depthwise-separable blocks (MobileNet) — extremely memory-bound,
* three-convolution towers — two intermediates, composed halos,
* MLP blocks (GEMM -> GELU -> GEMM).
"""

from conftest import emit, run_once

from repro.analysis import render_table
from repro.hardware import a100, xeon_gold_6240
from repro.ir.chains import conv_tower, mlp_chain, separable_chain
from repro.runtime import compare


def test_separable_blocks_gpu(benchmark):
    hw = a100()
    workloads = [
        ("mbv1-early", separable_chain(8, 32, 112, 112, 64)),
        ("mbv1-mid", separable_chain(8, 128, 28, 28, 256)),
        ("mbv1-late", separable_chain(8, 512, 7, 7, 1024)),
    ]

    def experiment():
        comp = compare(
            [c for _, c in workloads],
            hw,
            ("pytorch", "ansor", "chimera"),
            workload_names=[n for n, _ in workloads],
        )
        assert comp.geomean_speedup("Chimera", "PyTorch") > 1.0
        return comp

    comp = run_once(benchmark, experiment)
    emit(
        "ext_separable_gpu",
        comp.table("PyTorch")
        + f"\n\ngeomean Chimera over PyTorch: "
        f"{comp.geomean_speedup('Chimera', 'PyTorch'):.2f}x, over Ansor: "
        f"{comp.geomean_speedup('Chimera', 'Ansor'):.2f}x",
    )


def test_three_op_chains_cpu(benchmark):
    hw = xeon_gold_6240()
    workloads = [
        ("tower-1x1", conv_tower(1, 64, 56, 56, [64, 64, 64], [1, 1, 1])),
        ("tower-331", conv_tower(1, 32, 56, 56, [64, 64, 32], [3, 3, 1])),
        ("mlp-thin", mlp_chain(2048, 64, 2048, 64)),
    ]

    def experiment():
        comp = compare(
            [c for _, c in workloads],
            hw,
            ("relay", "ansor", "chimera"),
            workload_names=[n for n, _ in workloads],
        )
        assert comp.geomean_speedup("Chimera", "Relay") > 1.0
        return comp

    comp = run_once(benchmark, experiment)
    emit(
        "ext_three_op_cpu",
        comp.table("Relay")
        + f"\n\ngeomean Chimera over Relay: "
        f"{comp.geomean_speedup('Chimera', 'Relay'):.2f}x, over Ansor: "
        f"{comp.geomean_speedup('Chimera', 'Ansor'):.2f}x",
    )


def test_order_quality_vs_fixed(benchmark):
    """On the extension chains too, analytical ordering beats a hard-coded
    output-stationary order at equal tiling quality."""
    from repro.baselines.base import fixed_fusion_order
    from repro.core.movement import MovementModel
    from repro.core.optimizer import ChimeraOptimizer
    from repro.core.solver import solve_tiles

    hw = xeon_gold_6240()
    chains = [
        separable_chain(8, 64, 56, 56, 128),
        mlp_chain(2048, 64, 2048, 64),
    ]

    def experiment():
        rows = []
        capacity = float(hw.per_block_capacity(hw.level("L3"))) * 0.75
        for chain in chains:
            plan = ChimeraOptimizer(hw).optimize(chain)
            fixed = MovementModel(chain, fixed_fusion_order(chain))
            fixed_solution = solve_tiles(fixed, capacity)
            rows.append(
                [
                    chain.name[:40],
                    f"{plan.outer.predicted_dv / 1e6:.2f} MB",
                    f"{fixed_solution.dv / 1e6:.2f} MB",
                    f"{fixed_solution.dv / plan.outer.predicted_dv:.2f}x",
                ]
            )
            # Chimera plans only LRU-safe orders (no pinned distribution
            # buffers on hardware caches), which can concede a few percent
            # of raw DV to an unconstrained fixed order; it must stay
            # within that margin and usually wins outright.
            assert plan.outer.predicted_dv <= fixed_solution.dv * 1.15
        return rows

    rows = run_once(benchmark, experiment)
    emit(
        "ext_order_quality",
        "DRAM-boundary DV: analytical order vs fixed output-stationary\n"
        + render_table(
            ["chain", "Chimera DV", "fixed-order DV", "ratio"], rows
        ),
    )
