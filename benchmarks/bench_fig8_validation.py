"""Figure 8 (d-f): analytical model validation.

Profiles a square GEMM chain under tens of random decomposition factors and
compares Algorithm 1's predicted data movement against the simulator's
measured movement at the L1<->L2 boundary, for three cases:

* (d) order mlkn with intermediate reuse — paper R^2 = 0.97,
* (e) order mlnk — paper R^2 = 0.98,
* (f) order mlkn with the intermediate handoff severed — more movement.

The paper profiles M=N=K=L=2048; the simulation uses 512 (the validation
statistic is scale-free; 2048 at fine tilings needs millions of simulated
blocks).  Documented in EXPERIMENTS.md.
"""

from conftest import emit, run_once

from repro.analysis import render_table, validate_model
from repro.hardware import xeon_gold_6240
from repro.ir.chains import gemm_chain

SIZE = 512
SAMPLES = 50


def test_fig8_model_validation(benchmark):
    hw = xeon_gold_6240()
    chain = gemm_chain(SIZE, SIZE, SIZE, SIZE)

    def experiment():
        cases = []
        part_d = validate_model(
            chain, hw, ("m", "l", "k", "n"), samples=SAMPLES, seed=11
        )
        part_e = validate_model(
            chain, hw, ("m", "l", "n", "k"), samples=SAMPLES, seed=12
        )
        part_f = validate_model(
            chain, hw, ("m", "l", "k", "n"), samples=SAMPLES, seed=11,
            reuse_intermediates=False,
        )
        for label, result, paper_r2 in (
            ("(d) mlkn, reuse C", part_d, 0.97),
            ("(e) mlnk, reuse C", part_e, 0.98),
            ("(f) mlkn, no C reuse", part_f, None),
        ):
            assert result.r_squared > 0.95, label
            cases.append((label, result, paper_r2))
        # (f): dropping intermediate reuse costs movement — the measured
        # optimum is strictly worse than with reuse.
        assert (
            part_f.best_measured().measured
            > part_d.best_measured().measured
        )
        # The model's predicted optimum is near the measured optimum.
        assert (
            part_d.best_predicted().measured
            <= part_d.best_measured().measured * 1.1
        )
        return cases

    cases = run_once(benchmark, experiment)
    rows = []
    for label, result, paper_r2 in cases:
        rows.append(
            [
                label,
                f"{result.r_squared:.3f}",
                "-" if paper_r2 is None else f"{paper_r2:.2f}",
                f"{result.mean_relative_error:.3f}",
                f"{result.best_predicted().measured / 1e6:.1f} MB",
                f"{result.best_measured().measured / 1e6:.1f} MB",
                str(len(result.points)),
            ]
        )
    emit(
        "fig8_model_validation",
        f"GEMM chain M=N=K=L={SIZE}, L1<->L2 boundary, "
        f"{SAMPLES} decomposition factors per case\n"
        + render_table(
            [
                "case", "R^2", "paper R^2", "mean rel. err",
                "measured@predicted-best", "measured best", "points",
            ],
            rows,
        ),
    )
