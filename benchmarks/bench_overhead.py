"""Section VI-E: optimization overhead — Chimera vs a profiling tuner.

Chimera's inter-block pass is purely analytical; Ansor profiles ~1000
schedule candidates per kernel.  This benchmark measures Chimera's actual
wall-clock optimization time on the Table IV chains, estimates the tuner's
cost (trials x per-trial profile time), and reports the runtime of the two
resulting schedules.  Paper: Chimera optimizes 21.89x faster and the result
runs 1.39x faster.
"""

import time

from conftest import emit, run_once

from repro.analysis import geomean, render_table
from repro.baselines import get_system
from repro.hardware import xeon_gold_6240
from repro.workloads import TABLE_IV

# A profiling trial on hardware costs at least a kernel launch + measurement
# turnaround; 50ms is a generous-to-Ansor figure (the paper reports about
# half an hour per operator for 1000 trials, i.e. ~1.8s per trial).
SECONDS_PER_TRIAL = 0.05
CONFIGS = [c for i, c in enumerate(TABLE_IV) if i % 3 == 0]


def test_optimization_overhead(benchmark):
    hw = xeon_gold_6240()
    chimera = get_system("chimera")
    ansor = get_system("ansor")

    def experiment():
        rows = []
        time_ratios = []
        perf_ratios = []
        for config in CONFIGS:
            chain = config.build()
            started = time.perf_counter()
            ours = chimera.run(chain, hw)
            chimera_compile = time.perf_counter() - started
            tuned = ansor.run(chain, hw)
            tuner_cost = tuned.tune_trials * SECONDS_PER_TRIAL
            time_ratios.append(tuner_cost / chimera_compile)
            perf_ratios.append(tuned.time / ours.time)
            rows.append(
                [
                    config.name,
                    f"{chimera_compile:.2f} s",
                    f"{tuner_cost:.0f} s ({tuned.tune_trials} trials)",
                    f"{tuner_cost / chimera_compile:.1f}x",
                    f"{tuned.time / ours.time:.2f}x",
                ]
            )
        assert geomean(time_ratios) > 5.0
        assert geomean(perf_ratios) > 1.0
        return rows, geomean(time_ratios), geomean(perf_ratios)

    rows, time_gain, perf_gain = run_once(benchmark, experiment)
    emit(
        "overhead",
        render_table(
            [
                "chain", "Chimera optimize", "tuner cost",
                "optimize speedup", "runtime speedup",
            ],
            rows,
        )
        + f"\n\ngeomean: optimizes {time_gain:.1f}x faster, result runs "
        f"{perf_gain:.2f}x faster (paper: 21.89x and 1.39x)",
    )
