"""Compiled-schedule fast paths: executor and line-simulator speedups.

The compiled schedule flattens a block program once (numpy block tables,
precomputed regions/slices) and every consumer replays it: the numpy
executor dispatches prebuilt per-op closures over BLAS matmuls, and the
line simulator replays a memoized, run-length-coalesced line stream
through a batched LRU — one pass for all cache levels, instead of one
full scalar re-simulation per queried boundary.

Workload: the Bert-Base attention chain (G2, batch GEMM + softmax + batch
GEMM).  Gates: the Figure 8 three-boundary line-traffic sweep must be
>= 5x faster than the legacy per-boundary scalar path with *identical*
traffic at every level, and the compiled executor must be >= 2x faster
than the legacy tree-walking engine with allclose outputs.  Results land
in ``benchmarks/results/BENCH_exec_sim.json``.
"""

import json
import pathlib
import time

import numpy as np
from conftest import emit, run_once

from repro.analysis import render_table
from repro.codegen import (
    clear_schedule_memo,
    execute_program,
    lower_schedule,
    random_inputs,
    schedule_memo_stats,
)
from repro.hardware import xeon_gold_6240
from repro.sim.linecache import (
    LineHierarchySim,
    build_layouts,
    region_lines,
    simulate_movement_lines,
)
from repro.sim.trace import trace_program_interpreted
from repro.workloads import gemm_chain_config

MIN_SIM_SPEEDUP = 5.0
MIN_EXEC_SPEEDUP = 2.0
LINE_BYTES = 64
RESULTS_JSON = pathlib.Path(__file__).parent / "results" / "BENCH_exec_sim.json"

ORDER = ("b", "m", "l")
TILES = {"b": 1, "m": 64, "l": 128}


def _attention_chain(batch_override=None):
    return gemm_chain_config("G2").build(
        with_softmax=True, batch_override=batch_override
    )


def _legacy_boundary_sweep(chain, hardware, program):
    """The pre-compiled-schedule behaviour: one full scalar simulation
    per queried boundary, re-walking the loop tree and re-deriving every
    region and line each time."""
    traffic = {}
    for level in [lv.name for lv in hardware.on_chip_levels]:
        layouts = build_layouts(chain)
        sim = LineHierarchySim(hardware, line_bytes=LINE_BYTES)
        for access in trace_program_interpreted(program):
            layout = layouts[access.tensor]
            for first, last in region_lines(layout, access.region, LINE_BYTES):
                sim.access_span(first, last, write=access.write)
        sim.flush()
        traffic[level] = sim.boundary_traffic()[level]
    return traffic


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return time.perf_counter() - started, result


def test_exec_sim_fast_paths(benchmark):
    hardware = xeon_gold_6240()

    def experiment():
        # --- line simulator: Figure 8 three-boundary traffic sweep -----
        # Each engine is timed fully cold (fresh program, cleared schedule
        # memo) and takes the best of a few runs: allocator and GC noise
        # otherwise dominate the fast path's tens of milliseconds.
        sim_chain = _attention_chain(batch_override=1)

        legacy_sim_s = float("inf")
        for _ in range(2):
            sim_program = lower_schedule(sim_chain, ORDER, TILES)
            seconds, legacy_traffic = _timed(
                lambda: _legacy_boundary_sweep(
                    sim_chain, hardware, sim_program
                )
            )
            legacy_sim_s = min(legacy_sim_s, seconds)

        fast_sim_s = float("inf")
        for _ in range(3):
            clear_schedule_memo()
            sim_program = lower_schedule(sim_chain, ORDER, TILES)
            seconds, fast_stats = _timed(
                lambda: simulate_movement_lines(
                    sim_chain, hardware, sim_program, line_bytes=LINE_BYTES
                )
            )
            fast_sim_s = min(fast_sim_s, seconds)
        fast_traffic = {
            name: float(stats.fill_bytes + stats.writeback_bytes)
            for name, stats in fast_stats.items()
        }
        assert fast_traffic == legacy_traffic, (
            f"vectorized line-sim traffic diverged: "
            f"{fast_traffic} != {legacy_traffic}"
        )
        scalar_stats = simulate_movement_lines(
            sim_chain, hardware, sim_program,
            line_bytes=LINE_BYTES, engine="scalar",
        )
        for name, stats in scalar_stats.items():
            assert fast_stats[name] == stats, (
                f"line-cache counters diverged at {name}: "
                f"{fast_stats[name]} != {stats}"
            )
        sim_speedup = legacy_sim_s / fast_sim_s

        # --- executor: full Bert-Base attention chain ------------------
        exec_chain = _attention_chain()
        exec_program = lower_schedule(exec_chain, ORDER, TILES)
        inputs = random_inputs(exec_chain, 0)

        legacy_exec_s, legacy_out = min(
            (
                _timed(
                    lambda: execute_program(
                        exec_program, inputs, engine="legacy"
                    )
                )
                for _ in range(2)
            ),
            key=lambda pair: pair[0],
        )
        compiled_exec_s, compiled_out = min(
            (
                _timed(
                    lambda: execute_program(
                        exec_program, inputs, engine="compiled"
                    )
                )
                for _ in range(2)
            ),
            key=lambda pair: pair[0],
        )

        for name, expected in legacy_out.items():
            np.testing.assert_allclose(
                compiled_out[name], expected, rtol=1e-9, atol=1e-9,
                err_msg=f"compiled executor diverged on {name}",
            )
        exec_speedup = legacy_exec_s / compiled_exec_s

        assert sim_speedup >= MIN_SIM_SPEEDUP, (
            f"line-sim sweep speedup {sim_speedup:.1f}x, "
            f"expected >= {MIN_SIM_SPEEDUP}x"
        )
        assert exec_speedup >= MIN_EXEC_SPEEDUP, (
            f"executor speedup {exec_speedup:.1f}x, "
            f"expected >= {MIN_EXEC_SPEEDUP}x"
        )

        payload = {
            "workload": exec_chain.name,
            "hardware": hardware.name,
            "line_sim": {
                "legacy_sweep_s": legacy_sim_s,
                "fast_sweep_s": fast_sim_s,
                "speedup": sim_speedup,
                "gate": MIN_SIM_SPEEDUP,
                "boundary_traffic_bytes": fast_traffic,
                "counters_bit_identical": True,
            },
            "executor": {
                "legacy_s": legacy_exec_s,
                "compiled_s": compiled_exec_s,
                "speedup": exec_speedup,
                "gate": MIN_EXEC_SPEEDUP,
                "blocks": exec_program.block_count(),
            },
            "schedule_memo": schedule_memo_stats(),
        }
        return payload

    payload = run_once(benchmark, experiment)
    RESULTS_JSON.parent.mkdir(exist_ok=True)
    RESULTS_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    sim = payload["line_sim"]
    ex = payload["executor"]
    emit(
        "exec_sim_fast_paths",
        render_table(
            ["path", "legacy", "compiled", "speedup", "gate"],
            [
                [
                    "line-sim 3-boundary sweep",
                    f"{sim['legacy_sweep_s'] * 1e3:.0f} ms",
                    f"{sim['fast_sweep_s'] * 1e3:.0f} ms",
                    f"{sim['speedup']:.1f}x",
                    f">= {sim['gate']:.0f}x",
                ],
                [
                    f"execute_program ({ex['blocks']} blocks)",
                    f"{ex['legacy_s'] * 1e3:.0f} ms",
                    f"{ex['compiled_s'] * 1e3:.0f} ms",
                    f"{ex['speedup']:.1f}x",
                    f">= {ex['gate']:.0f}x",
                ],
            ],
        )
        + "\n\nline-cache counters bit-identical at every level; "
        + "executor outputs allclose to the legacy engine.",
    )
