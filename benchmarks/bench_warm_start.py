"""Shape-generalizing plan cache: warm-started near-miss compile speedup.

The tentpole claim of the shape index is that a compile service facing an
endless stream of *near-duplicate* shapes (dynamic batch/sequence sizes
over a handful of chain structures) stops paying the full optimizer cost
on every new shape: a miss is warm-started from the nearest cached plan of
the same structure (:class:`repro.service.ShapeIndex`), the neighbor's
winning order is solved first so the admissible DV bound prunes
immediately, and SLSQP starts at the neighbor's tile point instead of the
multi-start sweep — all latency-only, so the plan stays **byte-identical**
to a cold compile.

This benchmark fuzzes a sweep of perturbed GEMM-chain shapes per hardware
preset and serves each through two services:

* **cold** — ``CompileService(warm_start=False)``: every shape runs the
  full optimizer;
* **warm** — ``CompileService(warm_start=True)`` seeded with one base
  shape: every fuzzed shape is a near miss and must compile with
  ``warm_start == "near"``.

Process-global memos (solve memo, tables memo) are cleared before every
timed compile, so the measured speedup comes from the hints alone.

GEMM-family chains are the honest showcase: their order enumeration is
cheap, so solve time dominates and warm starts shine.  Convolution chains
share the same exactness guarantee but cap near ~1.2-1.7x because
candidate enumeration — identical cold or warm, and impossible to skip
exactly — dominates their compile time.

Gate: aggregate (total cold seconds / total warm seconds over the sweep)
must be >= 2x, and every warm plan must serialize byte-identically to its
cold twin.  Results land in ``benchmarks/results/bench_warm_start.txt``
and ``benchmarks/results/BENCH_warm_start.json`` (shared artifact
envelope).

Run standalone with ``python benchmarks/bench_warm_start.py [--smoke]``;
``--smoke`` restricts to a few shapes on one preset (CI keeps it quick)
but enforces the same 2x gate.
"""

import argparse
import json
import pathlib
import random
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from artifact import assert_gates, gate, write_artifact
from repro.analysis import render_table
from repro.core.search import reset_search_stats, solve_memo
from repro.core.tables import clear_tables_memo
from repro.hardware import all_presets
from repro.ir.chains import gemm_chain
from repro.runtime.serialization import plan_to_dict
from repro.service import WARM_NEAR, CompileService

#: Base GEMM-chain shape (m, n, k, l); the sweep perturbs every extent.
BASE_SHAPE = (512, 512, 512, 128)
FUZZ_SEED = 0x5EED

FULL_SHAPES = 50
SMOKE_SHAPES = 6
SMOKE_PRESETS = ("xeon-gold-6240",)
GATE = 2.0


def _fuzz_shapes(count, seed):
    """Deterministic sweep of distinct perturbed shapes (base excluded)."""
    rng = random.Random(seed)
    seen = {BASE_SHAPE}
    shapes = []
    while len(shapes) < count:
        shape = tuple(
            max(32, int(round(extent * rng.uniform(0.7, 1.3) / 8)) * 8)
            for extent in BASE_SHAPE
        )
        if shape in seen:
            continue
        seen.add(shape)
        shapes.append(shape)
    return shapes


def _clear_memos():
    """Warm starts must earn their speedup without memo contamination."""
    solve_memo().clear()
    clear_tables_memo()
    reset_search_stats()


def _canonical(served):
    decision = served.result.decision
    return json.dumps(
        {
            "use_fusion": decision.use_fusion,
            "fused": (
                None
                if decision.fused_plan is None
                else plan_to_dict(decision.fused_plan)
            ),
            "unfused": [plan_to_dict(p) for p in decision.unfused_plans],
        },
        sort_keys=True,
    )


def _timed_serve(service, chain, hw):
    _clear_memos()
    started = time.perf_counter()
    served = service.serve((chain, hw))
    return served, time.perf_counter() - started


def run_experiment(smoke=False):
    shape_count = SMOKE_SHAPES if smoke else FULL_SHAPES
    presets = [
        hw
        for hw in all_presets()
        if not smoke or hw.name in SMOKE_PRESETS
    ]
    shapes = _fuzz_shapes(shape_count, FUZZ_SEED)

    per_preset = {}
    rows = []
    mismatches = 0
    for hw in presets:
        warm_service = CompileService(warm_start=True)
        cold_service = CompileService(warm_start=False)
        # Seed the warm service's shape index with the base shape.
        _clear_memos()
        warm_service.serve((gemm_chain(*BASE_SHAPE), hw))

        cold_total = 0.0
        warm_total = 0.0
        near_count = 0
        for shape in shapes:
            warm_served, warm_s = _timed_serve(
                warm_service, gemm_chain(*shape), hw
            )
            cold_served, cold_s = _timed_serve(
                cold_service, gemm_chain(*shape), hw
            )
            assert warm_served.ok and cold_served.ok
            if warm_served.warm_start == WARM_NEAR:
                near_count += 1
            if _canonical(warm_served) != _canonical(cold_served):
                mismatches += 1
            warm_total += warm_s
            cold_total += cold_s

        speedup = cold_total / warm_total
        per_preset[hw.name] = {
            "cold_total_s": cold_total,
            "warm_total_s": warm_total,
            "speedup": speedup,
            "shapes": len(shapes),
            "near_starts": near_count,
        }
        rows.append([
            hw.name,
            str(len(shapes)),
            f"{near_count}/{len(shapes)}",
            f"{cold_total * 1e3:.0f} ms",
            f"{warm_total * 1e3:.0f} ms",
            f"{speedup:.2f}x",
        ])

    cold_total = sum(p["cold_total_s"] for p in per_preset.values())
    warm_total = sum(p["warm_total_s"] for p in per_preset.values())
    aggregate = cold_total / warm_total
    payload = {
        "mode": "smoke" if smoke else "full",
        "gate": GATE,
        "aggregate_speedup": aggregate,
        "cold_total_s": cold_total,
        "warm_total_s": warm_total,
        "plan_mismatches": mismatches,
        "base_shape": list(BASE_SHAPE),
        "fuzz_seed": FUZZ_SEED,
        "presets": per_preset,
    }
    rows.append([
        "aggregate",
        str(len(shapes) * len(presets)),
        "",
        f"{cold_total * 1e3:.0f} ms",
        f"{warm_total * 1e3:.0f} ms",
        f"{aggregate:.2f}x",
    ])
    text = render_table(
        ["preset", "shapes", "near", "cold", "warm", "speedup"], rows
    )
    gates = [
        gate(
            "warm-plans-byte-identical",
            payload["plan_mismatches"] == 0,
            f"{payload['plan_mismatches']} warm-started plan(s) diverged "
            "from their cold twins",
        ),
        gate(
            f"aggregate-speedup-{GATE}x",
            payload["aggregate_speedup"] >= GATE,
            f"{payload['aggregate_speedup']:.2f}x over "
            f"{len(shapes) * len(presets)} near-miss compiles",
        ),
    ]
    return payload, text, gates


def _finish(payload, text, gates, write_json):
    if write_json:
        write_artifact(
            "warm_start",
            payload,
            preset=",".join(payload["presets"]),
            gates=gates,
            mode=payload["mode"],
        )
    assert_gates(gates)


def test_warm_start_speedup(benchmark):
    from conftest import emit, run_once

    payload, text, gates = run_once(
        benchmark, lambda: run_experiment(smoke=False)
    )
    _finish(payload, text, gates, write_json=True)
    emit("bench_warm_start", text)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="few shapes on one preset, same gate, no JSON artifact",
    )
    args = parser.parse_args(argv)
    payload, text, gates = run_experiment(smoke=args.smoke)
    print(text)
    print(f"\naggregate speedup {payload['aggregate_speedup']:.2f}x "
          f"(gate {payload['gate']:.1f}x, mode {payload['mode']}, "
          f"mismatches {payload['plan_mismatches']})")
    _finish(payload, text, gates, write_json=not args.smoke)
    return 0


if __name__ == "__main__":
    sys.exit(main())
