"""Graph-level execution scheduling: peak-memory wins, priced overheads.

Two workloads exercise the scheduler where ordering freedom exists:

1. **Packed Bert** — several tenants' Bert graphs combined by
   ``pack_networks`` with the serving-style interleaved node order.  The
   naive topological order round-robins across tenants, keeping every
   tenant's working set live at once; the scheduler runs each tenant to
   completion before admitting the next.  (A single stitched Bert layer
   is a path graph — zero ordering freedom — which is exactly why the
   multi-tenant packing is the scenario this layer exists for.)
2. **Synthetic multi-branch graph** — one stem fanning into parallel
   expand/reduce GEMM branches, emitted breadth-first.  Depth-first
   scheduling drops the peak by roughly the branch count.

Gates (written to ``BENCH_graph_schedule.json`` via the shared artifact
envelope):

* scheduled peak strictly below the naive topological order's peak on
  both graphs, with at least ``MIN_PEAK_REDUCTION``x reduction;
* predicted end-to-end time no worse than the unscheduled plan's;
* the residency replay simulator reproduces the predicted peak and
  live-byte profile exactly, and the spill traffic it measures matches
  the movement model's round-trip byte counts;
* a deliberately tight budget forces evictions on the multi-branch
  graph: the budget-bound schedule must record rematerialize/spill
  decisions, land within the budget, and charge a positive spill
  overhead into the plan time (packed Bert is exempt — its depth-first
  schedule produces each tensor one step before its only read, so no
  tensor spans an untouched step and eviction can never relieve a peak);
* compiling twice yields byte-identical serialized plans (determinism
  under the fixed ``REPRO_SCHED_SEED``).

Run standalone with ``python benchmarks/bench_graph_schedule.py
[--smoke]``; smoke shrinks the graphs but enforces the same gates.
"""

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))

import repro
from artifact import assert_gates, gate, write_artifact
from repro.analysis import render_table
from repro.analysis.reporting import format_bytes
from repro.core.movement import spill_round_trip_bytes
from repro.runtime.network import compile_network
from repro.runtime.serialization import network_plan_json
from repro.sim.residency import replay_schedule
from repro.workloads import (
    build_multibranch_network,
    build_network,
    network_config,
    pack_networks,
)

MIN_PEAK_REDUCTION = 1.3


def _graphs(smoke):
    if smoke:
        bert = build_network(network_config("Bert-Small"))
        packed = pack_networks([bert] * 2, name="Bert-Small-x2")
        branches = build_multibranch_network(
            branches=4, seq=256, width=1024, reduce_dim=64
        )
    else:
        bert = build_network(network_config("Bert-Base"))
        packed = pack_networks([bert] * 3, name="Bert-Base-x3")
        branches = build_multibranch_network(
            branches=8, seq=512, width=2048, reduce_dim=64
        )
    return (packed, branches)


def _run_graph(dag, hw, budget_scenario):
    """Compile one graph scheduled, unscheduled, and budget-bound."""
    scheduled = compile_network(dag, hw, schedule=True)
    again = compile_network(dag, hw, schedule=True)
    unscheduled = compile_network(dag, hw, schedule=False)
    sched = scheduled.schedule

    trace = replay_schedule(sched)
    expected_spill = sum(
        spill_round_trip_bytes(r.nbytes, len(r.consumers))
        for r in sched.residency
        if r.decision == "spill"
    )

    # Budget binding: squeeze below the unconstrained scheduled peak so
    # the rematerialize-vs-spill pricing has to evict something.
    bound = None
    budget = None
    if budget_scenario:
        budget = max(1, int(sched.peak_bytes * 0.9))
        bound = compile_network(dag, hw, schedule=True, memory_budget=budget)

    gates = [
        gate(
            f"{dag.name}-peak-strictly-reduced",
            sched.peak_bytes < sched.naive_peak_bytes,
            f"scheduled {format_bytes(sched.peak_bytes)} vs naive "
            f"{format_bytes(sched.naive_peak_bytes)}",
        ),
        gate(
            f"{dag.name}-peak-reduction-{MIN_PEAK_REDUCTION}x",
            sched.peak_reduction >= MIN_PEAK_REDUCTION,
            f"{sched.peak_reduction:.2f}x",
        ),
        gate(
            f"{dag.name}-time-no-worse",
            scheduled.total_time <= unscheduled.total_time * (1 + 1e-9),
            f"scheduled {scheduled.total_time * 1e3:.3f} ms vs "
            f"unscheduled {unscheduled.total_time * 1e3:.3f} ms",
        ),
        gate(
            f"{dag.name}-replay-confirms-peak",
            trace.peak_bytes == sched.peak_bytes
            and trace.live_bytes == sched.live_bytes,
            f"replayed {format_bytes(trace.peak_bytes)} == predicted "
            f"{format_bytes(sched.peak_bytes)}",
        ),
        gate(
            f"{dag.name}-replay-spill-traffic-matches",
            trace.spill_bytes == expected_spill,
            f"replayed {trace.spill_bytes} B == movement-model "
            f"{expected_spill} B",
        ),
        gate(
            f"{dag.name}-deterministic",
            network_plan_json(scheduled) == network_plan_json(again),
            "byte-identical serialized plans across recompiles",
        ),
    ]
    if bound is not None:
        gates.extend([
            gate(
                f"{dag.name}-budget-forces-evictions",
                bool(bound.schedule.evictions),
                f"budget {format_bytes(budget)}: "
                f"{len(bound.schedule.evictions)} eviction(s)",
            ),
            gate(
                f"{dag.name}-budget-held",
                bound.schedule.within_budget,
                f"peak {format_bytes(bound.schedule.peak_bytes)} <= "
                f"budget {format_bytes(budget)}",
            ),
            gate(
                f"{dag.name}-evictions-priced",
                bound.spill_total_time > 0
                and bound.total_time > scheduled.total_time,
                f"spill overhead {bound.spill_total_time * 1e6:.2f} us",
            ),
        ])
    stats = {
        "nodes": len(scheduled.nodes),
        "naive_peak_bytes": sched.naive_peak_bytes,
        "scheduled_peak_bytes": sched.peak_bytes,
        "peak_reduction": sched.peak_reduction,
        "scheduled_time_s": scheduled.total_time,
        "unscheduled_time_s": unscheduled.total_time,
        "execution_order": list(sched.order),
        "budget_bytes": budget,
        "budget_peak_bytes": None if bound is None
        else bound.schedule.peak_bytes,
        "budget_evictions": [] if bound is None else [
            {
                "producer": r.producer,
                "decision": r.decision,
                "nbytes": r.nbytes,
                "overhead_time_s": r.overhead_time,
            }
            for r in bound.schedule.evictions
        ],
        "budget_time_s": None if bound is None else bound.total_time,
        "replay_spill_bytes": trace.spill_bytes,
    }
    return stats, gates


def run_schedule_experiment(smoke=False):
    """Schedule both graphs and collect the gate evidence."""
    hw = repro.xeon_gold_6240()
    per_graph = {}
    gates = []
    rows = []
    packed, branched = _graphs(smoke)
    for dag, budget_scenario in ((packed, False), (branched, True)):
        stats, graph_gates = _run_graph(dag, hw, budget_scenario)
        per_graph[dag.name] = stats
        gates.extend(graph_gates)
        rows.append([
            dag.name,
            str(stats["nodes"]),
            format_bytes(stats["naive_peak_bytes"]),
            format_bytes(stats["scheduled_peak_bytes"]),
            f"{stats['peak_reduction']:.2f}x",
            f"{stats['scheduled_time_s'] * 1e3:.3f} ms",
            "-" if stats["budget_bytes"] is None else
            f"{len(stats['budget_evictions'])} @ "
            f"{format_bytes(stats['budget_bytes'])}",
        ])
    payload = {
        "mode": "smoke" if smoke else "full",
        "hardware": hw.name,
        "min_peak_reduction": MIN_PEAK_REDUCTION,
        "graphs": per_graph,
    }
    text = render_table(
        ["graph", "nodes", "naive peak", "scheduled peak", "reduction",
         "time", "budget evictions"],
        rows,
    )
    return payload, text, gates


def _finish(payload, text, gates, write_json):
    if write_json:
        write_artifact(
            "graph_schedule",
            payload,
            preset=payload["hardware"],
            gates=gates,
            mode=payload["mode"],
        )
    assert_gates(gates)


def test_graph_schedule(benchmark):
    from conftest import emit, run_once

    payload, text, gates = run_once(
        benchmark, lambda: run_schedule_experiment(smoke=False)
    )
    _finish(payload, text, gates, write_json=True)
    emit("bench_graph_schedule", text)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="graph-level scheduling: peak memory vs naive order"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small graphs, same gates, no JSON artifact",
    )
    args = parser.parse_args(argv)
    payload, text, gates = run_schedule_experiment(smoke=args.smoke)
    print(text)
    for name, stats in payload["graphs"].items():
        line = (
            f"{name}: naive {format_bytes(stats['naive_peak_bytes'])} -> "
            f"scheduled {format_bytes(stats['scheduled_peak_bytes'])} "
            f"({stats['peak_reduction']:.2f}x)"
        )
        if stats["budget_bytes"] is not None:
            line += (
                f", {len(stats['budget_evictions'])} eviction(s) under "
                f"{format_bytes(stats['budget_bytes'])} budget"
            )
        print(line)
    _finish(payload, text, gates, write_json=not args.smoke)
    return 0


if __name__ == "__main__":
    sys.exit(main())
