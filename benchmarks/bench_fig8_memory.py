"""Figure 8 (a-c): memory analysis of Chimera vs PyTorch on CPU.

For the Table IV batch GEMM chains, profiles the fused Chimera kernel and
PyTorch's two separate kernels on the simulated hierarchy and reports:

* L2 and L3 hit rates (paper: Chimera's exceed PyTorch's),
* L2<->L3 traffic reduction (paper: 59.75% average),
* DRAM access reduction (paper: 75.17% average),
* L1<->L2 traffic increase (paper: +46%, the inter-op movement).

The paper profiles each subgraph running *alone*, so the measurement uses
the full shared L3 (``SimConfig(shared_capacity_per_core=False)``) rather
than the per-core split the optimizer conservatively plans against.
"""

from conftest import emit, run_once

from repro.analysis import geomean, render_table
from repro.baselines import get_system
from repro.hardware import xeon_gold_6240
from repro.sim import SimConfig
from repro.workloads import TABLE_IV

ISOLATED = SimConfig(shared_capacity_per_core=False)


def test_fig8_memory_analysis(benchmark):
    hw = xeon_gold_6240()
    chimera = get_system("chimera")
    pytorch = get_system("pytorch")

    def experiment():
        rows = []
        dram_ratios = []
        l2l3_ratios = []
        for config in TABLE_IV:
            chain = config.build()
            ours = chimera.run(chain, hw, sim_config=ISOLATED).report
            base = pytorch.run(chain, hw, sim_config=ISOLATED).report
            dram_ratios.append(base.dram_traffic / ours.dram_traffic)
            l2l3_ratios.append(base.traffic("L2") / ours.traffic("L2"))
            rows.append(
                [
                    config.name,
                    f"{ours.hit_rate('L2'):.3f}",
                    f"{base.hit_rate('L2'):.3f}",
                    f"{ours.hit_rate('L3'):.3f}",
                    f"{base.hit_rate('L3'):.3f}",
                    f"{1 - ours.traffic('L2') / base.traffic('L2'):+.1%}",
                    f"{1 - ours.dram_traffic / base.dram_traffic:+.1%}",
                    f"{ours.traffic('L1') / base.traffic('L1'):.2f}x",
                ]
            )
        # Aggregate claims (direction, not magnitude): fused Chimera moves
        # less data at the outer boundaries.
        assert geomean(dram_ratios) > 1.0
        assert geomean(l2l3_ratios) > 1.0
        return rows, geomean(dram_ratios), geomean(l2l3_ratios)

    rows, dram_gain, l2l3_gain = run_once(benchmark, experiment)
    table = render_table(
        [
            "Chain",
            "L2 hit (Chimera)", "L2 hit (PyTorch)",
            "L3 hit (Chimera)", "L3 hit (PyTorch)",
            "L2<->L3 traffic", "DRAM traffic", "L1 traffic ratio",
        ],
        rows,
    )
    emit(
        "fig8_memory_analysis",
        table
        + f"\n\ngeomean DRAM reduction factor: {dram_gain:.2f}x "
        f"(paper: 75.17% less = 4.03x)\n"
        f"geomean L2<->L3 reduction factor: {l2l3_gain:.2f}x "
        f"(paper: 59.75% less = 2.48x)",
    )
