"""Figure 2: different block execution orders give different data reuse.

Enumerates the GEMM chain's 24 orders (not 720 — Section IV-B's shared-loop
argument) and prints, per representative order, which IO tensors are reused
(no multipliers beyond compulsory) and the solved data movement volume, with
the optimizer's pick marked.
"""

from conftest import emit, run_once

from repro.analysis import render_table
from repro.core.reordering import candidate_models, count_orders
from repro.core.solver import solve_tiles
from repro.hardware import xeon_gold_6240
from repro.ir.chains import gemm_chain


def test_fig2_order_space(benchmark):
    chain = gemm_chain(2048, 2048, 2048, 2048)
    hw = xeon_gold_6240()
    capacity = float(hw.per_block_capacity(hw.level("L2"))) * 0.75

    def experiment():
        assert count_orders(chain) == 24
        space = candidate_models(chain)
        rows = []
        best = None
        for model in space.models:
            solution = solve_tiles(
                model, capacity, min_tiles={n: 8 for n in "mnkl"}
            )
            reused = [
                term.tensor
                for term in model.terms
                if len(term.multipliers) <= 2  # compulsory-ish movement
            ]
            entry = (
                solution.dv,
                "/".join(model.perm),
                ",".join(sorted(set(reused))),
                solution.feasible,
            )
            rows.append(entry)
            if solution.feasible and (best is None or entry[0] < best[0]):
                best = entry
        rows.sort()
        table = [
            [
                order,
                f"{dv / 1e6:.1f} MB",
                reused,
                "<= Chimera's pick" if (dv, order) == (best[0], best[1]) else "",
            ]
            for dv, order, reused, feasible in rows
            if feasible
        ]
        # The paper's analysis: the mlkn family (m and l outermost) wins.
        assert set(best[1].split("/")[:2]) == {"m", "l"}
        return table

    table = run_once(benchmark, experiment)
    emit(
        "fig2_orders",
        "GEMM chain 2048^4 on xeon L2 (24 canonical orders, deduplicated)\n"
        + render_table(["Order", "solved DV", "well-reused tensors", ""], table),
    )
