"""Ablations of this reproduction's own design choices (see DESIGN.md §6).

Not part of the paper — these justify the modelling decisions the
implementation added on top of Algorithm 1:

* **capacity utilization** — planning against 100% of an LRU level makes
  the simulator thrash; 75% headroom wins end to end.
* **order enumeration reductions** — canonical classes + signature dedup
  shrink a conv chain's 10! space to tens of solves without losing the
  optimum.
"""

from conftest import emit, run_once

from repro.analysis import geomean, render_table
from repro.baselines.base import BaselineSystem, SystemProfile
from repro.core.optimizer import ChimeraConfig, ChimeraOptimizer
from repro.core.reordering import candidate_models, count_orders
from repro.hardware import xeon_gold_6240
from repro.workloads import TABLE_IV, TABLE_V

import math


def test_capacity_utilization_sweep(benchmark):
    """Headroom vs measured time: 0.75 should beat 1.0 on LRU caches."""
    hw = xeon_gold_6240()
    chains = [TABLE_IV[i].build() for i in (0, 5, 10)]

    def experiment():
        from repro import microkernel
        from repro.sim import simulate_plan

        rows = []
        times = {}
        for utilization in (1.0, 0.9, 0.75, 0.5):
            per_chain = []
            for chain in chains:
                micro = microkernel.lower_for_chain(hw, chain)
                config = ChimeraConfig(
                    min_tiles=microkernel.chain_min_tiles(chain, micro),
                    quanta=microkernel.chain_quanta(chain, micro),
                    capacity_utilization=utilization,
                )
                plan = ChimeraOptimizer(hw, config).optimize(chain)
                eff = microkernel.chain_efficiency(
                    chain, micro, dict(plan.inner.tiles)
                )
                report = simulate_plan(plan.with_micro_kernel(micro.name, eff))
                per_chain.append(report.time)
            times[utilization] = geomean(per_chain)
            rows.append([f"{utilization:.2f}", f"{times[utilization] * 1e6:.1f} us"])
        # Full-capacity planning must not beat the default headroom.
        assert times[0.75] <= times[1.0] * 1.02
        return rows

    rows = run_once(benchmark, experiment)
    emit(
        "design_capacity_utilization",
        "geomean simulated time of G1/G6/G11 by MU capacity budget\n"
        + render_table(["utilization", "geomean time"], rows),
    )


def test_order_space_reductions(benchmark):
    """How far canonicalization + dedup shrink the search."""

    def experiment():
        rows = []
        for config in (TABLE_V[0], TABLE_V[5]):
            chain = config.build()
            loops = len(chain.independent_loops())
            canonical = count_orders(chain)
            space = candidate_models(chain)
            rows.append(
                [
                    config.name,
                    str(loops),
                    f"{math.factorial(loops):,}",
                    f"{canonical:,}",
                    str(len(space.models)),
                ]
            )
            assert len(space.models) < canonical
        for config in (TABLE_IV[0],):
            chain = config.build()
            loops = len(chain.independent_loops())
            space = candidate_models(chain)
            rows.append(
                [
                    config.name,
                    str(loops),
                    f"{math.factorial(loops):,}",
                    f"{count_orders(chain):,}",
                    str(len(space.models)),
                ]
            )
        return rows

    rows = run_once(benchmark, experiment)
    emit(
        "design_order_space",
        "order-space reduction: raw I! -> canonical -> unique DV signatures\n"
        + render_table(
            ["chain", "loops", "I!", "canonical", "signatures"], rows
        ),
    )
