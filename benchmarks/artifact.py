"""Uniform ``BENCH_*.json`` artifact writing for the benchmark suite.

Every gated benchmark persists a machine-readable artifact next to its
text report.  Historically each benchmark rolled its own JSON layout;
this module gives them one envelope so downstream tooling can diff
artifacts across benchmarks and runs without per-file special cases:

.. code-block:: json

    {
      "schema_version": 1,
      "benchmark": "graph_schedule",
      "mode": "full",
      "preset": "xeon-gold-6240",
      "gates": [{"name": "...", "passed": true, "detail": "..."}],
      "payload": { ... benchmark-specific results ... }
    }

Usage::

    gates = [gate("peak-reduced", sched < naive, f"{sched} < {naive}")]
    write_artifact("graph_schedule", payload, preset=hw.name, gates=gates)
    assert_gates(gates)

``assert_gates`` raises on the first failing gate *after* the artifact is
written, so a red run still leaves its evidence on disk.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any, Optional, Sequence

#: Bump when the artifact envelope (not a benchmark's payload) changes.
SCHEMA_VERSION = 1

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@dataclasses.dataclass(frozen=True)
class Gate:
    """One pass/fail criterion of a gated benchmark.

    Attributes:
        name: short stable identifier (artifact diffing keys on it).
        passed: whether the criterion held.
        detail: human-readable evidence (the compared numbers).
    """

    name: str
    passed: bool
    detail: str = ""


def gate(name: str, passed: bool, detail: str = "") -> Gate:
    """Build a :class:`Gate`, coercing truthiness to a plain bool."""
    return Gate(name=name, passed=bool(passed), detail=detail)


def write_artifact(
    benchmark: str,
    payload: Any,
    *,
    preset: str,
    gates: Sequence[Gate] = (),
    mode: str = "full",
    results_dir: Optional[pathlib.Path] = None,
) -> pathlib.Path:
    """Write ``BENCH_{benchmark}.json`` in the shared envelope.

    Args:
        benchmark: artifact name (file becomes ``BENCH_{benchmark}.json``).
        payload: benchmark-specific JSON-ready results.
        preset: hardware preset the run used.
        gates: the gate results to stamp in (pass *and* fail — the
            artifact records what was checked, not only what succeeded).
        mode: ``"full"`` or ``"smoke"``.
        results_dir: override the output directory (tests).

    Returns:
        the path written.
    """
    directory = RESULTS_DIR if results_dir is None else results_dir
    directory.mkdir(exist_ok=True, parents=True)
    path = directory / f"BENCH_{benchmark}.json"
    document = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": benchmark,
        "mode": mode,
        "preset": preset,
        "gates": [dataclasses.asdict(g) for g in gates],
        "payload": payload,
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def assert_gates(gates: Sequence[Gate]) -> None:
    """Raise ``AssertionError`` naming every failed gate (none: no-op)."""
    failed = [g for g in gates if not g.passed]
    if failed:
        raise AssertionError(
            "benchmark gate(s) failed: "
            + "; ".join(f"{g.name} ({g.detail})" for g in failed)
        )


def load_artifact(path: pathlib.Path) -> Any:
    """Read an artifact back, validating the envelope version."""
    document = json.loads(pathlib.Path(path).read_text())
    version = document.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"artifact {path} has schema_version {version!r}; "
            f"this build reads {SCHEMA_VERSION}"
        )
    return document
