"""Table III: per-tensor DM/DF of the GEMM chain under order mlkn.

Checks Algorithm 1's output against the paper's closed forms
(``DM_A = MK ceil(L/T_L)`` etc.) and prints the table.
"""

import math

from conftest import emit, run_once

from repro.analysis import render_table
from repro.core.movement import MovementModel
from repro.ir.chains import gemm_chain

M = N = K = L = 2048
TM, TN, TK, TL = 128, 32, 32, 128


def test_table3_dm_df(benchmark):
    chain = gemm_chain(M, N, K, L)
    tiles = {"m": TM, "n": TN, "k": TK, "l": TL}

    def experiment():
        model = MovementModel(chain, ("m", "l", "k", "n"))
        per_tensor = model.per_tensor(tiles)
        elem = 2  # fp16
        closed = {
            "A": M * K * math.ceil(L / TL) * elem,
            "B": K * L * math.ceil(M / TM) * elem,
            "C": 0.0,
            "D": N * L * math.ceil(M / TM) * elem,
            "E": M * N * math.ceil(L / TL) * elem,
        }
        footprints = {
            "A": TM * TK, "B": TK * TL, "C": TM * TL,
            "D": TL * TN, "E": TM * TN,
        }
        rows = []
        for tensor in ("A", "B", "C", "D", "E"):
            got = per_tensor[tensor]
            want = closed[tensor]
            assert got == want, (tensor, got, want)
            rows.append(
                [
                    tensor,
                    f"{got / 1e6:.2f} MB",
                    f"{want / 1e6:.2f} MB",
                    f"{footprints[tensor]} elems",
                ]
            )
        return rows

    rows = run_once(benchmark, experiment)
    emit(
        "table3_dmdf",
        "GEMM chain M=N=K=L=2048, order mlkn, "
        f"tiles T_M={TM} T_N={TN} T_K={TK} T_L={TL}\n"
        + render_table(["Tensor", "DM (Algorithm 1)", "DM (closed form)", "DF"], rows),
    )
