"""Serving layer under load: warm-hit latency, throughput, drain safety.

Three experiments against a loopback :class:`repro.serving.CompileServer`:

1. **warm concurrency** — pre-warm a handful of chains, then fire a
   large pipelined burst (1000 concurrent requests in full mode, 200 in
   smoke) of mixed interactive/batch traffic through async clients.
   Every reply must be a cache hit; the server-side warm percentiles
   (p50/p95/p99) and the end-to-end wall clock are reported.
2. **serialization gate** — a warm hit fundamentally costs one cache-key
   derivation plus one JSON encode/decode of the entry; everything else
   is server overhead.  The benchmark times that bare round trip inline
   and gates the server's warm-hit p99 *service* time (cache lookup on a
   worker thread, no queueing) at ``SERVICE_GATE_RATIO`` times the
   baseline, and the mean per-request wall share of the whole burst at
   ``WALL_GATE_RATIO`` times the baseline.  If serving stops being
   serialization-dominated, these trip.
3. **drain safety** — fire a cold burst, SIGTERM-equivalent drain while
   requests are still queued and in flight, and require that every
   admitted request completes (``admitted == completed``, zero dropped
   replies) — the serving layer's core loss-free guarantee.

Run standalone with ``python benchmarks/bench_service_load.py [--smoke]``;
CI runs the smoke mode.  Results land in
``benchmarks/results/BENCH_service_load.json`` (full mode only, shared
artifact envelope).
"""

import argparse
import asyncio
import json
import pathlib
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

import repro
from artifact import assert_gates, gate, write_artifact
from repro.analysis import render_table
from repro.hardware import preset
from repro.service import cache_key
from repro.service.metrics import percentile
from repro.serving import (
    TIER_BATCH,
    TIER_INTERACTIVE,
    AsyncServingClient,
    BackgroundServer,
    ServerConfig,
    ServingClient,
)

FULL_CONCURRENCY = 1000
SMOKE_CONCURRENCY = 200
WARM_CHAINS = 4
CLIENTS = 4

#: Warm-hit p99 service time (cache lookup, no queueing) may cost at most
#: this many bare key+JSON round trips.  The tail carries GIL contention
#: from the worker pool under a deep burst (~10x observed); decoding
#: kernels on the warm path — the regression this guards — costs ~150x.
SERVICE_GATE_RATIO = 20.0

#: Mean per-request share of the burst's wall clock, same baseline unit.
#: Covers the full pipeline: socket, parse, admission, executor, reply.
WALL_GATE_RATIO = 40.0

DRAIN_BURST_FULL = 24
DRAIN_BURST_SMOKE = 8


def _chain(i):
    return repro.batch_gemm_chain(2, 64, 32, 32, 64, name=f"load-{i}")


def _serialization_baseline(chain, hw, entry, rounds=300):
    started = time.perf_counter()
    for _ in range(rounds):
        cache_key(chain, hw)
        json.loads(json.dumps(entry))
    return (time.perf_counter() - started) / rounds


async def _fire_burst(host, port, chains, concurrency):
    clients = [
        await AsyncServingClient.open(host, port, tenant=f"bench-{i}")
        for i in range(CLIENTS)
    ]
    hw_name = "xeon-gold-6240"

    def tier_for(i):
        return TIER_INTERACTIVE if i % 2 == 0 else TIER_BATCH

    started = time.perf_counter()
    replies = await asyncio.gather(
        *(
            clients[i % CLIENTS].compile(
                chains[i % len(chains)], hw_name, tier=tier_for(i)
            )
            for i in range(concurrency)
        )
    )
    wall = time.perf_counter() - started
    for client in clients:
        await client.close()
    return replies, wall


def _warm_load(smoke):
    concurrency = SMOKE_CONCURRENCY if smoke else FULL_CONCURRENCY
    hw = preset("xeon-gold-6240")
    chains = [_chain(i) for i in range(WARM_CHAINS)]
    with tempfile.TemporaryDirectory() as tmp:
        config = ServerConfig(
            port=0,
            workers=4,
            cache_dir=tmp,
            shards=4,
            interactive_queue=concurrency,
            batch_queue=concurrency,
            compact_interval=0,
        )
        with BackgroundServer(config) as bg:
            entry = None
            with ServingClient(bg.host, bg.port) as client:
                for chain in chains:  # pre-warm every key
                    reply = client.compile(chain, "xeon-gold-6240",
                                           check=True)
                    entry = reply.entry
            replies, wall = asyncio.run(
                _fire_burst(bg.host, bg.port, chains, concurrency)
            )
            stats = bg.stats()

    failed = [r for r in replies if not r.ok]
    assert not failed, (
        f"{len(failed)} of {concurrency} warm requests failed: "
        f"{failed[0].status} {failed[0].error}"
    )
    cold = [r for r in replies if not r.from_cache]
    assert not cold, f"{len(cold)} requests missed a pre-warmed cache"

    baseline_s = _serialization_baseline(chains[0], hw, entry)
    service_p99 = percentile([r.service_seconds for r in replies], 99)
    warm_summary = stats["latencies"].get("serve_warm", {})
    per_request = wall / concurrency
    return {
        "concurrency": concurrency,
        "wall_s": wall,
        "throughput_rps": concurrency / wall,
        "per_request_s": per_request,
        "baseline_round_trip_s": baseline_s,
        "service_p99_s": service_p99,
        "service_p99_ratio": service_p99 / baseline_s,
        "wall_ratio": per_request / baseline_s,
        "server_warm_p50_s": warm_summary.get("p50", 0.0),
        "server_warm_p95_s": warm_summary.get("p95", 0.0),
        "server_warm_p99_s": warm_summary.get("p99", 0.0),
        "shed": sum(
            tier["shed"] for tier in stats["serving"]["queues"].values()
        ),
    }


def _drain_safety(smoke):
    burst = DRAIN_BURST_SMOKE if smoke else DRAIN_BURST_FULL
    chains = [_chain(100 + i) for i in range(burst)]
    with tempfile.TemporaryDirectory() as tmp:
        config = ServerConfig(
            port=0, workers=2, cache_dir=tmp, compact_interval=0
        )
        with BackgroundServer(config) as bg:

            async def scenario():
                client = await AsyncServingClient.open(bg.host, bg.port)
                sends = [
                    asyncio.ensure_future(
                        client.compile(chain, "xeon-gold-6240")
                    )
                    for chain in chains
                ]
                # Drain while the burst is still queued/compiling; the
                # call blocks a worker thread, not this loop.
                loop = asyncio.get_running_loop()
                await asyncio.sleep(0.05)
                drain_started = time.perf_counter()
                await loop.run_in_executor(None, bg.drain)
                drain_s = time.perf_counter() - drain_started
                replies = await asyncio.gather(*sends)
                await client.close()
                return replies, drain_s

            replies, drain_s = asyncio.run(scenario())
            queues = bg.stats()["serving"]["queues"]

    admitted_replies = [r for r in replies if r.status != 503]
    dropped = [r for r in admitted_replies if not r.ok]
    assert not dropped, (
        f"drain dropped {len(dropped)} admitted request(s): "
        f"{[r.error for r in dropped]}"
    )
    admitted = sum(tier["admitted"] for tier in queues.values())
    completed = sum(tier["completed"] for tier in queues.values())
    assert admitted == completed, (
        f"drain lost work: {admitted} admitted, {completed} completed"
    )
    return {
        "burst": burst,
        "admitted": admitted,
        "completed": completed,
        "refused_during_drain": len(replies) - len(admitted_replies),
        "drain_s": drain_s,
    }


def run_experiment(smoke=False):
    warm = _warm_load(smoke)
    drain = _drain_safety(smoke)
    payload = {
        "mode": "smoke" if smoke else "full",
        "service_gate_ratio": SERVICE_GATE_RATIO,
        "wall_gate_ratio": WALL_GATE_RATIO,
        "warm": warm,
        "drain": drain,
    }
    rows = [
        ["concurrent warm requests", f"{warm['concurrency']}"],
        ["burst wall clock", f"{warm['wall_s'] * 1e3:.0f} ms"],
        ["throughput", f"{warm['throughput_rps']:.0f} req/s"],
        [
            "bare key+JSON round trip",
            f"{warm['baseline_round_trip_s'] * 1e3:.3f} ms",
        ],
        [
            "warm service p99 (lookup)",
            f"{warm['service_p99_s'] * 1e3:.3f} ms "
            f"({warm['service_p99_ratio']:.1f}x baseline)",
        ],
        [
            "server warm p50/p95/p99",
            f"{warm['server_warm_p50_s'] * 1e3:.2f} / "
            f"{warm['server_warm_p95_s'] * 1e3:.2f} / "
            f"{warm['server_warm_p99_s'] * 1e3:.2f} ms",
        ],
        [
            "mean wall per request",
            f"{warm['per_request_s'] * 1e3:.3f} ms "
            f"({warm['wall_ratio']:.1f}x baseline)",
        ],
        ["requests shed", f"{warm['shed']}"],
        [
            "drain burst",
            f"{drain['burst']} sent, {drain['admitted']} admitted, "
            f"{drain['completed']} completed, "
            f"{drain['refused_during_drain']} refused (503)",
        ],
        ["drain wall clock", f"{drain['drain_s'] * 1e3:.0f} ms"],
    ]
    text = render_table(["metric", "value"], rows)
    gates = [
        gate(
            "warm-zero-shed",
            warm["shed"] == 0,
            f"{warm['shed']} of {warm['concurrency']} warm requests shed",
        ),
        gate(
            f"warm-p99-within-{SERVICE_GATE_RATIO:.0f}x-serialization",
            warm["service_p99_ratio"] <= SERVICE_GATE_RATIO,
            f"warm-hit p99 service time {warm['service_p99_ratio']:.1f}x "
            "the bare key+JSON round trip",
        ),
        gate(
            f"wall-within-{WALL_GATE_RATIO:.0f}x-serialization",
            warm["wall_ratio"] <= WALL_GATE_RATIO,
            f"mean per-request wall share {warm['wall_ratio']:.1f}x the "
            "bare round trip",
        ),
        gate(
            "drain-loss-free",
            drain["admitted"] == drain["completed"],
            f"{drain['admitted']} admitted, {drain['completed']} completed",
        ),
    ]
    return payload, text, gates


def _finish(payload, text, gates, write_json):
    if write_json:
        write_artifact(
            "service_load",
            payload,
            preset="xeon-gold-6240",
            gates=gates,
            mode=payload["mode"],
        )
    assert_gates(gates)


def test_service_load(benchmark):
    from conftest import emit, run_once

    payload, text, gates = run_once(
        benchmark, lambda: run_experiment(smoke=False)
    )
    _finish(payload, text, gates, write_json=True)
    emit("bench_service_load", text)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="200-deep burst and a small drain, no JSON artifact",
    )
    args = parser.parse_args(argv)
    payload, text, gates = run_experiment(smoke=args.smoke)
    print(text)
    warm = payload["warm"]
    print(
        f"\n{warm['concurrency']} concurrent warm requests at "
        f"{warm['throughput_rps']:.0f} req/s; warm p99 "
        f"{warm['service_p99_ratio']:.1f}x the serialization baseline "
        f"(gate {SERVICE_GATE_RATIO:.0f}x); drain lost "
        f"{payload['drain']['admitted'] - payload['drain']['completed']} "
        "request(s)"
    )
    _finish(payload, text, gates, write_json=not args.smoke)
    return 0


if __name__ == "__main__":
    sys.exit(main())
