"""Figure 5: subgraph fusion performance on CPU (Xeon Gold 6240 model).

Four parts, as in the paper: (a) batch GEMM + batch GEMM, (b) batch GEMM
chain + softmax, (c) convolution + convolution, (d) convolution chain +
ReLU.  Bars are relative performance normalized to PyTorch (higher is
better).  Paper averages for reference: (a) Chimera 2.62x over PyTorch,
4.78x over Relay, 1.40x over Ansor, 3.28x over oneDNN.
"""

import pytest
from conftest import emit, run_once

from repro.hardware import xeon_gold_6240
from repro.runtime import compare
from repro.workloads import TABLE_IV, TABLE_V

SYSTEMS = ("pytorch", "relay", "ansor", "onednn", "chimera")


def _summary(comp):
    lines = [comp.table("PyTorch"), ""]
    for over in ("PyTorch", "Relay", "Ansor", "oneDNN"):
        lines.append(
            f"geomean Chimera speedup over {over}: "
            f"{comp.geomean_speedup('Chimera', over):.2f}x "
            f"(max {comp.max_speedup('Chimera', over):.2f}x)"
        )
    return "\n".join(lines)


def _assert_chimera_wins(comp):
    for over in ("PyTorch", "Relay", "Ansor", "oneDNN"):
        assert comp.geomean_speedup("Chimera", over) > 1.0, over


def test_fig5a_bmm_bmm(benchmark):
    hw = xeon_gold_6240()
    chains = [c.build() for c in TABLE_IV]

    def experiment():
        comp = compare(
            chains, hw, SYSTEMS, workload_names=[c.name for c in TABLE_IV]
        )
        _assert_chimera_wins(comp)
        return comp

    comp = run_once(benchmark, experiment)
    emit("fig5a_cpu_bmm_bmm", _summary(comp))


def test_fig5b_bmm_softmax(benchmark):
    hw = xeon_gold_6240()
    chains = [c.build(with_softmax=True) for c in TABLE_IV]

    def experiment():
        comp = compare(
            chains, hw, SYSTEMS, workload_names=[c.name for c in TABLE_IV]
        )
        _assert_chimera_wins(comp)
        return comp

    comp = run_once(benchmark, experiment)
    emit("fig5b_cpu_bmm_softmax", _summary(comp))


def test_fig5c_conv_conv(benchmark):
    hw = xeon_gold_6240()
    configs = TABLE_V
    chains = [c.build() for c in configs]

    def experiment():
        comp = compare(
            chains, hw, SYSTEMS, workload_names=[c.name for c in configs]
        )
        # The paper's claim on CPU convs: Chimera beats Relay and Ansor.
        assert comp.geomean_speedup("Chimera", "Relay") > 1.0
        assert comp.geomean_speedup("Chimera", "Ansor") > 1.0
        return comp

    comp = run_once(benchmark, experiment)
    emit("fig5c_cpu_conv_conv", _summary(comp))


def test_fig5d_conv_relu(benchmark):
    hw = xeon_gold_6240()
    configs = TABLE_V
    chains = [c.build(with_relu=True) for c in configs]

    def experiment():
        comp = compare(
            chains, hw, SYSTEMS, workload_names=[c.name for c in configs]
        )
        assert comp.geomean_speedup("Chimera", "PyTorch") > 1.0
        assert comp.geomean_speedup("Chimera", "Relay") > 1.0
        return comp

    comp = run_once(benchmark, experiment)
    emit("fig5d_cpu_conv_relu", _summary(comp))
