"""Persisting fusion plans: optimize once, reload anywhere.

The analytical optimizer runs in seconds, but a deployment compiling many
chains wants to do it exactly once.  The recommended path is the
compilation service: a :class:`repro.CompileService` keys every request by
a content hash of the chain + machine model, keeps results in an in-memory
LRU over an on-disk JSON store, and rebuilds executable kernels from a hit
without touching the optimizer — across processes and restarts.

The raw ``save_plan`` / ``load_plan`` functions remain available as the
low-level alternative when you want to manage plan files yourself (e.g. to
ship a single named plan as a build artifact).

Run:
    python examples/plan_caching.py
"""

import pathlib
import tempfile
import time

import numpy as np

import repro
from repro.codegen import build_kernel
from repro.runtime import load_plan, save_plan


def service_api(cache_dir: pathlib.Path) -> None:
    """The recommended path: content-addressed caching via the service."""
    chain = repro.attention_chain(batch=8, seq=256, head_dim=64)
    hw = repro.a100()
    service = repro.CompileService(cache_dir=cache_dir)

    started = time.perf_counter()
    cold = service.compile(chain, hw)
    cold_seconds = time.perf_counter() - started
    print(f"cold compile of {chain.name}: {cold_seconds:.2f}s")

    # A second service instance — think "next process" — hits the disk tier.
    service = repro.CompileService(cache_dir=cache_dir)
    started = time.perf_counter()
    warm = service.compile(chain, hw)
    warm_seconds = time.perf_counter() - started
    print(f"warm compile (new service, same cache dir): "
          f"{warm_seconds * 1e3:.1f}ms "
          f"({cold_seconds / warm_seconds:.0f}x faster, optimizer skipped)")
    assert warm.predicted_time == cold.predicted_time
    assert (warm.kernels[0].plan.outer.order
            == cold.kernels[0].plan.outer.order)

    kernel = warm.kernels[0]
    inputs = repro.random_inputs(chain, seed=0)
    outputs = kernel(inputs)
    reference = repro.execute_reference(chain, inputs)
    assert np.allclose(outputs["E"], reference["E"], rtol=1e-9, atol=1e-11)
    print("warm kernel verified against the reference")

    stats = service.stats()
    print(f"service stats: {stats['hits']} hit(s), "
          f"{stats['misses']} miss(es), "
          f"{stats['cache']['disk_entries']} plan(s) on disk")


def raw_save_load() -> None:
    """The low-level alternative: explicit plan files."""
    chain = repro.attention_chain(batch=8, seq=256, head_dim=64)
    hw = repro.a100()

    started = time.perf_counter()
    plan = repro.optimize_chain(chain, hw)
    optimize_seconds = time.perf_counter() - started
    print(f"optimized {chain.name} in {optimize_seconds:.2f}s")

    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "attention.plan.json"
        save_plan(plan, path)
        print(f"saved plan: {path.stat().st_size} bytes of JSON")

        started = time.perf_counter()
        reloaded = load_plan(path)
        kernel = build_kernel(reloaded)
        reload_seconds = time.perf_counter() - started
        print(f"reloaded and lowered in {reload_seconds * 1e3:.1f}ms "
              f"({optimize_seconds / reload_seconds:.0f}x faster than "
              f"re-optimizing)")

    inputs = repro.random_inputs(chain, seed=0)
    outputs = kernel(inputs)
    reference = repro.execute_reference(chain, inputs)
    assert np.allclose(outputs["E"], reference["E"], rtol=1e-9, atol=1e-11)
    print("reloaded kernel verified against the reference — plans are "
          "fully self-contained")
    print()
    print(reloaded.describe())


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        print("== service API (recommended) ==")
        service_api(pathlib.Path(tmp) / "plans")
    print()
    print("== raw save_plan / load_plan (low level) ==")
    raw_save_load()


if __name__ == "__main__":
    main()
