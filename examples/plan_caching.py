"""Persisting fusion plans: optimize once, reload anywhere.

The analytical optimizer runs in seconds, but a deployment compiling many
chains wants to do it exactly once.  Plans serialize to plain JSON —
including the chain IR and the machine model — and reload into executable
kernels with no re-optimization.

Run:
    python examples/plan_caching.py
"""

import pathlib
import tempfile
import time

import numpy as np

import repro
from repro.codegen import build_kernel
from repro.runtime import load_plan, save_plan


def main() -> None:
    chain = repro.attention_chain(batch=8, seq=256, head_dim=64)
    hw = repro.a100()

    started = time.perf_counter()
    plan = repro.optimize_chain(chain, hw)
    optimize_seconds = time.perf_counter() - started
    print(f"optimized {chain.name} in {optimize_seconds:.2f}s")

    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "attention.plan.json"
        save_plan(plan, path)
        print(f"saved plan: {path.stat().st_size} bytes of JSON")

        started = time.perf_counter()
        reloaded = load_plan(path)
        kernel = build_kernel(reloaded)
        reload_seconds = time.perf_counter() - started
        print(f"reloaded and lowered in {reload_seconds * 1e3:.1f}ms "
              f"({optimize_seconds / reload_seconds:.0f}x faster than "
              f"re-optimizing)")

    inputs = repro.random_inputs(chain, seed=0)
    outputs = kernel(inputs)
    reference = repro.execute_reference(chain, inputs)
    assert np.allclose(outputs["E"], reference["E"], rtol=1e-9, atol=1e-11)
    print("reloaded kernel verified against the reference — plans are "
          "fully self-contained")
    print()
    print(reloaded.describe())


if __name__ == "__main__":
    main()
