"""Validating the analytical model against simulated profiling (Figure 8).

Samples random decomposition factors for a square GEMM chain, predicts the
L1<->L2 data movement with Algorithm 1, measures it by replaying the block
schedule through the cache simulator, and prints the scatter plus R^2 —
the reproduction of the paper's Figure 8(d-f).

Run:
    python examples/model_validation.py
"""

import repro
from repro.analysis import validate_model
from repro.ir.chains import gemm_chain


def _ascii_scatter(points, width=56, height=14):
    """Crude terminal scatter of predicted (x) vs measured (y)."""
    xs = [p.predicted for p in points]
    ys = [p.measured for p in points]
    lo = min(min(xs), min(ys))
    hi = max(max(xs), max(ys))
    span = hi - lo or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - lo) / span * (width - 1))
        row = height - 1 - int((y - lo) / span * (height - 1))
        grid[row][col] = "o"
    # y = x diagonal
    for i in range(min(width, height * 4)):
        col = int(i / (min(width, height * 4) - 1) * (width - 1))
        row = height - 1 - int(i / (min(width, height * 4) - 1) * (height - 1))
        if grid[row][col] == " ":
            grid[row][col] = "."
    return "\n".join("".join(row) for row in grid)


def main() -> None:
    hw = repro.xeon_gold_6240()
    chain = gemm_chain(512, 512, 512, 512)

    for label, order, reuse in (
        ("(d) order mlkn, intermediate reused", ("m", "l", "k", "n"), True),
        ("(e) order mlnk, intermediate reused", ("m", "l", "n", "k"), True),
        ("(f) order mlkn, no intermediate reuse", ("m", "l", "k", "n"), False),
    ):
        result = validate_model(
            chain, hw, order, samples=40, seed=7, reuse_intermediates=reuse
        )
        print("=" * 64)
        print(f"{label}: R^2 = {result.r_squared:.3f}, "
              f"mean relative error {result.mean_relative_error:.1%}")
        best = result.best_predicted()
        print(f"model's pick measures {best.measured / 1e6:.1f} MB "
              f"(measured optimum {result.best_measured().measured / 1e6:.1f} MB)")
        print("measured (y) vs predicted (x), '.' marks y = x:")
        print(_ascii_scatter(result.points))
        print()


if __name__ == "__main__":
    main()
