"""Compiling through the always-on server: clients, tiers, hot restart.

A production deployment runs ``python -m repro serve`` once and points
every client at it — the plan cache warms exactly once per distinct
(chain, hardware, config) across all processes and machines.  This
example boots the same server in-process (:class:`BackgroundServer`,
the harness tests and benchmarks use), then walks the client surface:

* a blocking :class:`ServingClient` doing a cold compile, a warm hit,
  and local decode of the wire entry into a ``CompileResult``;
* an :class:`AsyncServingClient` pipelining a burst of batch-tier
  requests over one connection;
* the HTTP shim (``GET /stats`` / ``GET /healthz``) for ops tooling;
* a graceful drain followed by a hot restart that re-warms the memory
  tier from disk and carries the metrics counters forward.

Run:
    python examples/serving_client.py
"""

import asyncio
import pathlib
import tempfile
import time

import repro
from repro.serving import (
    AsyncServingClient,
    BackgroundServer,
    ServerConfig,
    ServingClient,
    TIER_BATCH,
    http_get,
)

HW_NAME = "a100"


def blocking_client(host: int, port: int) -> None:
    chain = repro.attention_chain(batch=8, seq=256, head_dim=64)
    with ServingClient(host, port, tenant="example") as client:
        started = time.perf_counter()
        cold = client.compile(chain, HW_NAME, check=True)
        cold_s = time.perf_counter() - started
        print(f"cold compile over the wire: {cold_s:.2f}s "
              f"(source={cold.source})")

        started = time.perf_counter()
        warm = client.compile(chain, HW_NAME, check=True)
        warm_s = time.perf_counter() - started
        print(f"warm hit over the wire: {warm_s * 1e3:.1f}ms "
              f"(source={warm.source}, {cold_s / warm_s:.0f}x faster)")

        # The server shipped the raw cache entry; kernel lowering happens
        # here, on the client.
        result = warm.decode(HW_NAME)
        decision = "fused" if result.fused else "unfused"
        print(f"decoded locally: {decision} plan, "
              f"{len(result.kernels)} kernel(s)")


def pipelined_client(host: str, port: int) -> None:
    chain = repro.attention_chain(batch=8, seq=256, head_dim=64)

    async def burst():
        client = await AsyncServingClient.open(host, port, tenant="example")
        replies = await asyncio.gather(
            *(
                client.compile(chain, HW_NAME, tier=TIER_BATCH, check=True)
                for _ in range(64)
            )
        )
        await client.close()
        return replies

    started = time.perf_counter()
    replies = asyncio.run(burst())
    wall = time.perf_counter() - started
    hits = sum(reply.from_cache for reply in replies)
    print(f"pipelined 64 batch-tier requests in {wall * 1e3:.0f}ms "
          f"({hits} cache hits)")


def ops_endpoints(host: str, port: int) -> None:
    status, health = http_get(host, port, "/healthz")
    print(f"GET /healthz -> {status} ok={health['ok']}")
    status, stats = http_get(host, port, "/stats")
    queues = stats["serving"]["queues"]
    print(f"GET /stats   -> {status} requests={stats['requests']} "
          f"hit_rate={stats['hit_rate']:.0%} "
          f"interactive_admitted={queues['interactive']['admitted']} "
          f"batch_admitted={queues['batch']['admitted']}")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        cache_dir = str(pathlib.Path(tmp) / "plans")
        config = ServerConfig(
            port=0, workers=2, cache_dir=cache_dir, shards=2,
            compact_interval=0,
        )

        with BackgroundServer(config) as server:
            print(f"server up on {server.host}:{server.port}")
            blocking_client(server.host, server.port)
            pipelined_client(server.host, server.port)
            ops_endpoints(server.host, server.port)
            server.drain()  # SIGTERM equivalent: finish all, checkpoint
            print("drained: metrics checkpointed next to the cache")

        # "Hot restart": a new process over the same cache dir re-warms
        # the memory tier and restores the counters before serving.
        with BackgroundServer(config) as server:
            serving = server.stats()["serving"]
            print(f"restarted: re-warmed {serving['warmed_entries']} "
                  f"plan(s), counters restored="
                  f"{serving['restored_counters']}")
            with ServingClient(server.host, server.port) as client:
                chain = repro.attention_chain(batch=8, seq=256, head_dim=64)
                reply = client.compile(chain, HW_NAME, check=True)
                print(f"first request after restart served from "
                      f"{reply.source}")


if __name__ == "__main__":
    main()
