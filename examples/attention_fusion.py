"""Self-attention fusion: softmax(Q K^T) V as one kernel.

The paper's flagship workload: two batch GEMMs with a softmax between.
Chimera fuses all three — the softmax's row sum is accumulated on the fly
and the division is swapped past the second GEMM — while library baselines
launch three kernels and round-trip the attention matrix through DRAM.

This script compares Chimera against the CPU baselines on the Bert-Base
attention shape and prints where the time goes.

Run:
    python examples/attention_fusion.py
"""

import numpy as np

import repro
from repro.baselines import get_system


def main() -> None:
    # Bert-Base: 12 heads, sequence 512, head dim 64 (Table IV's G2).
    chain = repro.attention_chain(batch=12, seq=512, head_dim=64)
    hw = repro.xeon_gold_6240()
    print(chain.describe())
    print()

    # Verify the fused softmax numerics first.
    result = repro.compile_chain(chain, hw, force_fusion=True)
    kernel = result.kernels[0]
    inputs = repro.random_inputs(chain, seed=1)
    outputs = kernel(inputs)
    reference = repro.execute_reference(chain, inputs)
    assert np.allclose(outputs["E"], reference["E"], rtol=1e-9, atol=1e-11)
    print("fused softmax numerics: OK "
          "(row sums accumulated on the fly, division deferred)")
    print()

    # Compare against the paper's CPU baselines.
    rows = []
    for key in ("pytorch", "relay", "ansor", "onednn", "chimera"):
        system = get_system(key)
        res = system.run(chain, hw)
        rows.append((system.name, res.time, res.report.launches,
                     res.report.dram_traffic))
    base_time = rows[0][1]
    print(f"{'system':10s} {'time':>10s} {'rel. perf':>10s} "
          f"{'kernels':>8s} {'DRAM':>10s}")
    for name, seconds, launches, dram in rows:
        print(
            f"{name:10s} {seconds * 1e6:8.1f}us {base_time / seconds:9.2f}x "
            f"{launches:8d} {dram / 1e6:8.2f}MB"
        )
    chimera_time = rows[-1][1]
    print()
    print(f"Chimera runs the whole attention score-value product as ONE "
          f"kernel, {base_time / chimera_time:.2f}x faster than PyTorch's "
          f"three launches.")

    # Where the fused kernel spends its time.
    print()
    report = repro.simulate_plan(result.kernels[0].plan)
    print(report.describe())


if __name__ == "__main__":
    main()
