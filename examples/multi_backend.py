"""One chain, three backends: replaceable micro kernels in action.

Section V of the paper: the same high-level matmul micro kernel lowers to
AVX-512 assembly on CPU, WMMA tensor-core intrinsics on GPU, and cube-unit
``mad`` pragmas on NPU.  The inter-block optimizer re-plans per machine
(different hierarchies, capacities, bandwidths) while the code generator
swaps the registered low-level implementation.

Run:
    python examples/multi_backend.py
"""

import repro
from repro import microkernel
from repro.hardware import all_presets


def main() -> None:
    chain = repro.batch_gemm_chain(batch=8, m=512, n=64, k=64, l=512)

    for hw in all_presets():
        print("=" * 72)
        print(f"{hw.name} ({hw.backend}): "
              f"{hw.peak_flops / 1e12:.0f} TFLOP/s, "
              f"balance {hw.machine_balance:.0f} flop/byte")
        kernel = microkernel.lower_for_chain(hw, chain)
        print(f"  micro kernel: {kernel.name}")
        print(f"    native tile {kernel.tile_m}x{kernel.tile_n}x{kernel.tile_k},"
              f" AI {kernel.arithmetic_intensity:.2f},"
              f" params {dict(kernel.params)}")

        result = repro.compile_chain(chain, hw, force_fusion=True)
        plan = result.kernels[0].plan
        outer = plan.outer
        inner = plan.inner
        print(f"  block order (DRAM-facing): {'/'.join(outer.order)}")
        print(f"  outer tiles: "
              + ", ".join(f"{n}={outer.tiles[n]}" for n in outer.order))
        print(f"  inner level {inner.level}: order {'/'.join(inner.order)}")

        report = repro.simulate_plan(plan)
        print(f"  simulated: {report.time * 1e6:.1f}us "
              f"(compute {report.compute_time * 1e6:.1f}us, "
              f"DRAM {report.dram_traffic / 1e6:.2f}MB)")

        print("  lowered micro kernel (first 6 lines):")
        for line in kernel.source.splitlines()[:6]:
            print("    " + line)
        print()


if __name__ == "__main__":
    main()
