"""Compiling a whole network: partition, batch-compile, verify, persist.

The paper's end-to-end evaluation (Figure 9) replaces the attention batch
GEMM chains of Transformer/Bert/ViT graphs with Chimera kernels while the
host compiler runs everything else.  :func:`repro.compile_network` is that
pipeline at network granularity:

1. partition the :class:`ComputeDAG` into fusable compute-intensive chains
   and the memory-intensive remainder,
2. fan every node through the compilation service (shared plan cache,
   parallel batch, request coalescing),
3. make the fused-vs-unfused call per chain and assemble a serializable
   :class:`repro.NetworkPlan` with plan-backed end-to-end timings.

Run:
    python examples/network_compilation.py
"""

import pathlib
import tempfile
import time

import repro
from repro.runtime.network import benchmark_network_compile
from repro.runtime.serialization import network_plan_json
from repro.workloads import build_network, network_config, network_time


def main() -> None:
    config = network_config("Bert-Small")
    dag = build_network(config)
    hw = repro.xeon_gold_6240()
    print(f"{config.name}: {len(dag.nodes)} node(s) per layer, "
          f"{config.layers} layers, {dag.total_flops() / 1e9:.1f} GFLOPs")

    with tempfile.TemporaryDirectory() as tmp:
        service = repro.CompileService(cache_dir=pathlib.Path(tmp) / "plans")

        started = time.perf_counter()
        plan = repro.compile_network(dag, hw, service=service)
        cold_seconds = time.perf_counter() - started
        print(f"cold network compile: {cold_seconds:.2f}s")
        print()
        print(plan.describe())
        print()
        print(f"end-to-end (predicted): {plan.total_time * 1e3:.3f} ms, "
              f"{plan.speedup_over_unfused:.3f}x over all-unfused")

        # The same service warm: every node comes back from the plan cache.
        started = time.perf_counter()
        warm = repro.compile_network(dag, hw, service=service)
        warm_seconds = time.perf_counter() - started
        assert network_plan_json(warm) == network_plan_json(plan)
        print(f"warm recompile: {warm_seconds * 1e3:.0f} ms "
              f"({cold_seconds / warm_seconds:.0f}x faster, byte-identical "
              f"plan)")

        # NetworkPlans persist like chain plans do.
        path = pathlib.Path(tmp) / "bert-small.network.json"
        repro.save_network_plan(plan, path)
        reloaded = repro.load_network_plan(path)
        assert network_plan_json(reloaded) == network_plan_json(plan)
        print(f"saved + reloaded network plan: {path.stat().st_size} bytes")

        # Plan-backed chain timings drop into the Figure 9 harness in place
        # of the analytic chain model.
        chain_times = {
            node.name: node.time for node in plan.nodes if node.fusable
        }
        timing = network_time(
            dag, hw, base_system="relay", chain_times=chain_times
        )
        print(f"network_time with plan-backed chains: "
              f"{timing.total * 1e3:.3f} ms")

    # The benchmark helper packages cold-serial vs. cold-batch vs.
    # warm-batch into one report.
    with tempfile.TemporaryDirectory() as tmp:
        service = repro.CompileService(cache_dir=tmp)
        _, report = benchmark_network_compile(dag, hw, service)
        print()
        print(f"cold serial  : {report.cold_serial_seconds:.2f}s")
        print(f"cold batch   : {report.cold_batch_seconds:.2f}s "
              f"({report.batch_speedup:.2f}x)")
        print(f"warm batch   : {report.warm_batch_seconds * 1e3:.0f} ms "
              f"({report.warm_speedup:.0f}x)")


if __name__ == "__main__":
    main()
