"""Convolution chain fusion and the fuse-or-not decision.

CNN backbones chain convolutions directly (Figure 1b of the paper).
Fusing them is profitable when the *second* convolution is memory-bound
(point-wise 1x1 layers); a compute-bound 3x3 consumer pays halo
recomputation and gains little — the paper's case C6.  Chimera's planner
makes that call analytically per chain.

Run:
    python examples/conv_chain_fusion.py
"""

import numpy as np

import repro
from repro.analysis import fusion_prognosis
from repro.workloads import TABLE_V, conv_chain_config


def main() -> None:
    hw = repro.a100()

    print("fuse-or-not across Table V (batch 8, A100 model)")
    print(f"{'chain':6s} {'shape':>26s} {'consumer':>14s} "
          f"{'fused speedup':>14s} {'decision':>10s}")
    for config in TABLE_V:
        chain = config.build(batch=8)
        decision = repro.decide_fusion(chain, hw)
        _, per_op, _ = fusion_prognosis(chain, hw)
        consumer = per_op[-1]
        kind = "mem-bound" if consumer.memory_bound else "compute"
        shape = (f"{config.ic}x{config.h}x{config.w} "
                 f"k{config.k1}->k{config.k2}")
        print(
            f"{config.name:6s} {shape:>26s} {kind:>14s} "
            f"{decision.predicted_speedup:13.2f}x "
            f"{'fuse' if decision.use_fusion else 'split':>10s}"
        )

    # Deep dive into C1 (SqueezeNet-style 3x3 stride 2 -> 1x1).
    print()
    config = conv_chain_config("C1")
    chain = config.build(batch=1)
    result = repro.compile_chain(chain, hw, force_fusion=True)
    kernel = result.kernels[0]
    plan = kernel.plan
    print(f"C1 fused plan ({chain.name}):")
    print(plan.describe())
    recompute = plan.executed_flops / chain.total_flops()
    print(f"halo recomputation factor: {recompute:.3f}x algorithmic flops")

    # Numerics: sliding-window recomputation must not change the result.
    inputs = repro.random_inputs(chain, seed=3)
    outputs = kernel(inputs)
    reference = repro.execute_reference(chain, inputs)
    err = float(np.max(np.abs(outputs["Y2"] - reference["Y2"])))
    print(f"numerical check vs reference: max error {err:.2e}")
    assert err < 1e-9


if __name__ == "__main__":
    main()
