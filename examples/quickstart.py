"""Quickstart: compile and run a fused batch GEMM chain.

Builds the attention-style chain ``E = (A x B) x D`` (Table IV's G1 shape),
lets Chimera pick the block execution order and tile sizes analytically,
executes the generated fused kernel numerically, and checks the result
against a plain operator-by-operator reference.

Run:
    python examples/quickstart.py
"""

import numpy as np

import repro


def main() -> None:
    # The workload: batch GEMM chain from Bert-Small's attention layer.
    chain = repro.batch_gemm_chain(batch=8, m=512, n=64, k=64, l=512)
    print(chain.describe())
    print()

    # The machine: the paper's Xeon Gold 6240 model.
    hw = repro.xeon_gold_6240()
    print(hw.describe())
    print()

    # Compile: inter-block reordering + tiling + micro kernel selection.
    result = repro.compile_chain(chain, hw)
    kernel = result.kernels[0]
    print(f"fusion decision: {'fuse' if result.fused else 'do not fuse'} "
          f"(predicted speedup {result.decision.predicted_speedup:.2f}x)")
    print(kernel.plan.describe())
    print()

    # Execute the fused kernel and verify numerics.
    inputs = repro.random_inputs(chain, seed=42)
    outputs = kernel(inputs)
    reference = repro.execute_reference(chain, inputs)
    max_err = float(np.max(np.abs(outputs["E"] - reference["E"])))
    print(f"numerical check: max |fused - reference| = {max_err:.2e}")
    assert np.allclose(outputs["E"], reference["E"], rtol=1e-9, atol=1e-11)

    # Measure on the simulated memory hierarchy.
    report = repro.simulate_plan(kernel.plan)
    print()
    print(report.describe())

    # Inspect the generated pseudo-C.
    print()
    print("generated kernel (first 25 lines):")
    for line in kernel.source.splitlines()[:25]:
        print("  " + line)


if __name__ == "__main__":
    main()
